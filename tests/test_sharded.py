"""Sharded serving: shm transport round-trips, routing, exactness, lifecycle."""

import os
import pickle
import signal
import time

import numpy as np
import pytest

from repro.core.tree_policy import TreePolicy
from repro.data import (
    ActionBatch,
    InfoBatch,
    ObservationBatch,
    PolicyRequestBatch,
    PolicyResponseBatch,
    SharedMemoryColumnarBuffer,
    ShmBatchHeader,
    ShmTransportError,
)
from repro.data.shm import ColumnSegment
from repro.dtree.cart import DecisionTreeClassifier
from repro.serving import (
    PolicyServer,
    ShardedPolicyServer,
    ShardedServingError,
    shard_for_policy,
    shard_rows,
)

N_FEATURES = 6
ACTION_PAIRS = [(15 + i, 22 + i) for i in range(8)]


def random_policy(seed: int, rows: int = 160) -> TreePolicy:
    """A tree fitted on random data — irregular shape, random thresholds."""
    rng = np.random.default_rng(seed)
    features = rng.uniform(-5.0, 5.0, size=(rows, N_FEATURES))
    labels = rng.integers(0, len(ACTION_PAIRS), size=rows)
    tree = DecisionTreeClassifier(max_depth=int(rng.integers(2, 9)))
    tree.fit(features, labels)
    return TreePolicy(tree, action_pairs=ACTION_PAIRS)


def mixed_batch(seed: int, rows: int, policy_ids) -> PolicyRequestBatch:
    rng = np.random.default_rng(seed)
    return PolicyRequestBatch(
        policy_ids=np.array([policy_ids[i % len(policy_ids)] for i in range(rows)]),
        observations=rng.uniform(-6.0, 6.0, size=(rows, N_FEATURES)),
    )


@pytest.fixture
def ring():
    buffer = SharedMemoryColumnarBuffer.create(4 * 1024 * 1024)
    yield buffer
    buffer.close()
    buffer.unlink()


# ------------------------------------------------------------ shm round-trips
def _example_batches():
    rng = np.random.default_rng(3)
    return [
        ObservationBatch(rng.uniform(size=(5, N_FEATURES))),
        ObservationBatch(rng.uniform(size=(4, N_FEATURES)).astype(np.float32)),
        ActionBatch.from_indices([1, 4, 2]).with_setpoints(np.asarray(ACTION_PAIRS)),
        InfoBatch(
            step=11,
            hour_of_day=np.arange(3.0),
            occupied=np.array([0.0, 1.0, 1.0]),
            zone_temperature=np.array([20.5, 21.0, 19.9]),
        ),
        PolicyRequestBatch(
            policy_ids=np.array(["a", "b", "a", "c"]),
            observations=rng.uniform(size=(4, N_FEATURES)),
        ),
        PolicyResponseBatch(
            policy_ids=np.array(["a", "b"]),
            action_indices=np.array([0, 5]),
            heating_setpoints=np.array([15, 20]),
            cooling_setpoints=np.array([22, 27]),
        ),
    ]


@pytest.mark.parametrize("batch", _example_batches(), ids=lambda b: type(b).__name__)
def test_shm_round_trip_every_batch_type(ring, batch):
    header = batch.to_shm(ring)
    restored = type(batch).from_shm(ring, header, copy=True)
    assert type(restored) is type(batch)
    assert len(restored) == len(batch)
    for name, column in batch.columns().items():
        out = getattr(restored, name)
        assert out.dtype == column.dtype, name
        assert np.array_equal(out, column), name
    # Batch-level metadata survives too.
    assert restored._metadata() == batch._metadata()


def test_shm_read_is_zero_copy(ring):
    batch = _example_batches()[0]
    header = batch.to_shm(ring)
    view = ObservationBatch.from_shm(ring, header)
    # Mutate the segment through an independent mapping; the view must see it.
    peer = SharedMemoryColumnarBuffer.attach(ring.name)
    raw = np.ndarray(
        view.values.shape, view.values.dtype, buffer=peer._shm.buf,
        offset=header.columns[0].offset,
    )
    raw[0, 0] = 123.5
    assert view.values[0, 0] == 123.5
    del raw, view
    peer.close()


def test_shm_header_is_queue_sized_not_row_sized(ring):
    small = PolicyRequestBatch.single_policy("p", np.zeros((8, N_FEATURES)))
    big = PolicyRequestBatch.single_policy("p", np.zeros((8192, N_FEATURES)))
    small_header = small.to_shm(ring)
    big_header = big.to_shm(ring)
    # A 1000x bigger payload may only cost a few bytes of integer encoding in
    # the header — never a function of the row count.
    assert abs(len(pickle.dumps(big_header)) - len(pickle.dumps(small_header))) <= 16
    assert len(pickle.dumps(big_header)) < 1024


def test_shm_no_pickle_guard_rejects_array_metadata():
    header = ShmBatchHeader(
        batch_type="ObservationBatch",
        segment="x",
        columns=(ColumnSegment("values", "<f8", (2, 2), 0),),
        metadata={"smuggled": np.zeros(4)},
    )
    with pytest.raises(ShmTransportError, match="pickle"):
        header.assert_zero_copy()


def test_shm_wrong_type_and_oversize_are_loud(ring):
    batch = _example_batches()[0]
    header = batch.to_shm(ring)
    with pytest.raises(ShmTransportError, match="expected"):
        ActionBatch.from_shm(ring, header)
    huge = ObservationBatch(np.zeros((200000, N_FEATURES)))
    with pytest.raises(ShmTransportError, match="ring"):
        huge.to_shm(ring)  # 9.6 MB payload into a 4 MB ring


def test_shm_ring_wraps_and_reuses_capacity(ring):
    batch = ObservationBatch(np.random.default_rng(0).uniform(size=(4096, N_FEATURES)))
    # ~200 KB per write through a 4 MB ring: must wrap many times over.
    for _ in range(100):
        header = batch.to_shm(ring)
        restored = ObservationBatch.from_shm(ring, header)
        assert np.array_equal(restored.values, batch.values)


# ----------------------------------------------------------------- routing
def test_shard_routing_is_deterministic_and_stable():
    ids = [f"building-{i}" for i in range(64)]
    first = [shard_for_policy(policy_id, 4) for policy_id in ids]
    second = [shard_for_policy(policy_id, 4) for policy_id in ids]
    assert first == second
    # CRC-based, not hash()-based: pin a few values so an accidental switch
    # to interpreter-salted hashing fails loudly.
    assert shard_for_policy("building-0", 4) == 2
    assert shard_for_policy("building-1", 4) == 0
    # 64 ids across 4 shards must touch every shard.
    assert set(first) == {0, 1, 2, 3}


def test_shard_rows_matches_per_row_hash():
    batch = mixed_batch(0, 40, [f"b{i}" for i in range(5)])
    expected = np.array(
        [shard_for_policy(str(pid), 3) for pid in batch.policy_ids]
    )
    assert np.array_equal(shard_rows(batch, 3), expected)


# ------------------------------------------------------------- exactness
@pytest.fixture(scope="module")
def policies():
    return {f"building-{i}": random_policy(i + 70) for i in range(6)}


def test_sharded_matches_single_process_on_mixed_batches(tmp_path, policies):
    single = PolicyServer(store=str(tmp_path), cache_size=8)
    for policy_id, policy in policies.items():
        single.register(policy_id, policy)
    with ShardedPolicyServer(store=str(tmp_path), num_shards=3) as fleet:
        owners = {
            policy_id: fleet.register(policy_id, policy)
            for policy_id, policy in policies.items()
        }
        assert len(set(owners.values())) > 1  # genuinely spread across shards
        for seed, rows in ((1, 257), (2, 1024), (3, 33)):
            batch = mixed_batch(seed, rows, list(policies))
            expected = single.serve_columnar(batch)
            got = fleet.serve_columnar(
                PolicyRequestBatch(
                    policy_ids=batch.policy_ids, observations=batch.observations
                )
            )
            assert np.array_equal(got.action_indices, expected.action_indices)
            assert np.array_equal(got.heating_setpoints, expected.heating_setpoints)
            assert np.array_equal(got.cooling_setpoints, expected.cooling_setpoints)
            assert np.array_equal(got.policy_ids, batch.policy_ids)
        stats = fleet.stats()
        assert stats["requests"] == 257 + 1024 + 33
        assert stats["unique_policies"] == len(policies)


def test_sharded_single_policy_batch_and_object_adapter(tmp_path, policies):
    from repro.serving import PolicyRequest

    with ShardedPolicyServer(store=str(tmp_path), num_shards=2) as fleet:
        for policy_id, policy in policies.items():
            fleet.register(policy_id, policy)
        observations = np.random.default_rng(5).uniform(-5, 5, size=(17, N_FEATURES))
        # All rows for one policy: the no-permutation fast path.
        response = fleet.serve_columnar(
            PolicyRequestBatch.single_policy("building-0", observations)
        )
        expected = policies["building-0"].predict_action_indices(observations)
        assert np.array_equal(response.action_indices, expected)
        # Legacy object adapter mirrors PolicyServer.serve.
        replies = fleet.serve(
            [PolicyRequest("building-1", observations[0])]
        )
        assert replies[0].action_index == policies["building-1"].predict_action_index(
            observations[0]
        )


def test_sharded_store_resolution_matches_single_process(tmp_path):
    from repro.core.pipeline import PipelineConfig, VerifiedPolicyPipeline
    from repro.store import PolicyStore

    store = PolicyStore(tmp_path)
    tiny = dict(num_decision_data=48, training_epochs=8, num_probabilistic_samples=64)
    for seed in (61, 62):
        VerifiedPolicyPipeline(PipelineConfig.tiny(seed=seed, **tiny), store=store).run()
    ids = [entry.key.name for entry in store.entries()]
    single = PolicyServer(store=store, cache_size=4)
    batch = mixed_batch(9, 300, ids)
    expected = single.serve_columnar(batch)
    with ShardedPolicyServer(store=store, num_shards=2) as fleet:
        got = fleet.serve_columnar(
            PolicyRequestBatch(
                policy_ids=batch.policy_ids, observations=batch.observations
            )
        )
    assert np.array_equal(got.action_indices, expected.action_indices)


def test_in_process_fallback_spawns_no_workers(tmp_path, policies):
    fallback = ShardedPolicyServer(store=str(tmp_path), num_shards=1)
    for policy_id, policy in policies.items():
        fallback.register(policy_id, policy)
    batch = mixed_batch(4, 64, list(policies))
    response = fallback.serve_columnar(batch)
    assert not fallback.started
    assert fallback.ping()[0]["in_process"] is True
    single = PolicyServer(store=str(tmp_path), cache_size=8)
    for policy_id, policy in policies.items():
        single.register(policy_id, policy)
    assert np.array_equal(
        response.action_indices, single.serve_columnar(batch).action_indices
    )
    fallback.close()


def test_sharded_unknown_policy_raises(tmp_path, policies):
    with ShardedPolicyServer(store=str(tmp_path / "empty"), num_shards=2) as fleet:
        with pytest.raises(ShardedServingError, match="UnknownPolicyError"):
            fleet.serve_columnar(
                PolicyRequestBatch.single_policy("no/such/policy", np.zeros((2, N_FEATURES)))
            )
        # The fleet survives the error and keeps serving.
        fleet.register("building-0", policies["building-0"])
        response = fleet.serve_columnar(
            PolicyRequestBatch.single_policy("building-0", np.zeros((2, N_FEATURES)))
        )
        assert len(response) == 2


def test_empty_batch_short_circuits(tmp_path):
    fleet = ShardedPolicyServer(store=str(tmp_path), num_shards=2)
    assert fleet.serve([]) == []
    assert not fleet.started  # empty batches never spawn the fleet
    fleet.close()


# --------------------------------------------------------------------- CLI
def test_cli_serve_sharded_smoke(tmp_path, capsys):
    from repro.experiments.cli import main

    store_root = str(tmp_path / "store")
    assert (
        main(
            [
                "serve",
                "--store",
                store_root,
                "--requests",
                "400",
                "--batch-size",
                "128",
                "--decision-data",
                "48",
                "--shards",
                "2",
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "req/s" in out
    assert "| 2" in out  # the shards column


# -------------------------------------------------------------- lifecycle
def test_sigterm_shuts_workers_down_without_leaking_shm(tmp_path, policies):
    fleet = ShardedPolicyServer(
        store=str(tmp_path), num_shards=2, heartbeat_interval=None
    ).start()
    for policy_id, policy in policies.items():
        fleet.register(policy_id, policy)
    fleet.serve_columnar(mixed_batch(6, 128, list(policies)))
    states = fleet.supervisor.states()
    ring_names = [
        ring.name
        for state in states
        for ring in (state.request_ring, state.response_ring)
    ]
    workers = [state.process for state in states]
    for worker in workers:
        os.kill(worker.pid, signal.SIGTERM)
    for worker in workers:
        worker.join(timeout=10.0)
    assert all(worker.exitcode == 0 for worker in workers)  # clean exits
    fleet.close()
    for name in ring_names:
        with pytest.raises(FileNotFoundError):
            SharedMemoryColumnarBuffer.attach(name)


def test_close_is_idempotent_and_sigkill_between_batches_heals(tmp_path, policies):
    fleet = ShardedPolicyServer(
        store=str(tmp_path), num_shards=2, timeout=5.0, heartbeat_interval=None
    ).start()
    fleet.register("building-0", policies["building-0"])
    shard = shard_for_policy("building-0", 2)
    victim = fleet.supervisor.state(shard).process
    os.kill(victim.pid, signal.SIGKILL)
    deadline = time.monotonic() + 10.0
    while victim.is_alive() and time.monotonic() < deadline:
        time.sleep(0.05)
    # The supervisor restarts the dead worker on contact and replays the
    # registration journal: the caller sees a served batch, not an error.
    single = PolicyServer(store=False)
    single.register("building-0", policies["building-0"])
    observations = np.zeros((2, N_FEATURES))
    request = PolicyRequestBatch.single_policy("building-0", observations)
    response = fleet.serve_columnar(request)
    expected = single.serve_columnar(request)
    assert np.array_equal(response.action_indices, expected.action_indices)
    assert fleet.supervisor.restarts_total >= 1
    assert fleet.supervisor.state(shard).generation >= 1
    fleet.close()
    fleet.close()  # idempotent
