"""Columnar data plane: schema types, columnar↔legacy equivalence, dtype policy.

Three layers of guarantees:

* the schema types themselves (validation, slicing, concat, numpy interop),
* every columnar layer boundary produces exactly what the legacy object path
  produced — env infos, agent action batches, server responses,
* the float32 dynamics fast path tracks the float64 reference closely enough
  that distilled labels agree (the acceptance bar is >= 99.5%).
"""

import numpy as np
import pytest

from repro.data import (
    ActionBatch,
    InfoBatch,
    ObservationBatch,
    PolicyRequestBatch,
    PolicyResponseBatch,
    resolve_float_dtype,
)

N_FEATURES = 6
ACTION_PAIRS = [(15 + i, 22 + i) for i in range(8)]


def random_policy(seed: int, rows: int = 160):
    from repro.core.tree_policy import TreePolicy
    from repro.dtree.cart import DecisionTreeClassifier

    rng = np.random.default_rng(seed)
    features = rng.uniform(-5.0, 5.0, size=(rows, N_FEATURES))
    labels = rng.integers(0, len(ACTION_PAIRS), size=rows)
    tree = DecisionTreeClassifier(max_depth=int(rng.integers(2, 9)))
    tree.fit(features, labels)
    return TreePolicy(tree, action_pairs=ACTION_PAIRS)


# ---------------------------------------------------------------- schema
def test_resolve_float_dtype():
    assert resolve_float_dtype("float32") == np.float32
    assert resolve_float_dtype(np.float64) == np.float64
    with pytest.raises(ValueError, match="float"):
        resolve_float_dtype("int32")
    with pytest.raises(ValueError, match="float"):
        resolve_float_dtype("no-such-dtype")  # unparseable strings too


def test_observation_batch_coercion_and_views():
    rows = np.arange(12, dtype=np.int64).reshape(2, 6)
    batch = ObservationBatch(rows)  # ints coerce to the float64 reference
    assert batch.values.dtype == np.float64
    assert len(batch) == 2 and batch.num_features == 6
    # float32 is preserved, not silently upcast.
    batch32 = ObservationBatch(np.zeros((3, 6), dtype=np.float32))
    assert batch32.dtype == np.float32
    # Named columns are zero-copy views into the matrix.
    column = batch.column("outdoor_temperature")
    assert np.array_equal(column, batch.values[:, 1])
    assert column.base is batch.values
    with pytest.raises(KeyError, match="available"):
        batch.column("nope")
    # numpy interop: asarray and integer row indexing.
    assert np.asarray(batch) is batch.values
    assert np.array_equal(batch[1], rows[1].astype(float))


def test_observation_batch_validation():
    with pytest.raises(ValueError, match="dimension"):
        ObservationBatch(np.zeros(6))
    with pytest.raises(ValueError, match="feature name"):
        ObservationBatch(np.zeros((2, 4)))  # 4 columns vs 6 declared names
    named = ObservationBatch.from_rows(np.zeros((2, 4)))
    assert named.feature_names == ("f0", "f1", "f2", "f3")


def test_observation_batch_slice_take_concat_astype():
    values = np.random.default_rng(0).uniform(size=(10, 6))
    batch = ObservationBatch(values)
    window = batch.slice(2, 5)
    assert len(window) == 3
    assert window.values.base is not None  # zero-copy view
    picked = batch.take([0, 9, 3])
    assert np.array_equal(picked.values, values[[0, 9, 3]])
    merged = ObservationBatch.concat([window, picked])
    assert len(merged) == 6
    assert merged.feature_names == batch.feature_names
    as32 = batch.astype("float32")
    assert as32.dtype == np.float32
    assert batch.astype(np.float64) is batch  # no-op stays zero-copy


def test_batch_getitem_honours_slice_step():
    values = np.arange(60, dtype=float).reshape(10, 6)
    batch = ObservationBatch(values)
    assert np.array_equal(batch[::2].values, values[::2])
    assert np.array_equal(batch[::-1].values, values[::-1])
    assert np.array_equal(batch[1:8:3].values, values[1:8:3])
    actions = ActionBatch.from_indices(np.arange(10))
    assert actions[::2].tolist() == list(range(0, 10, 2))
    assert actions[::-1].tolist() == list(range(9, -1, -1))
    # Tuple (row, col) indexing is a legacy-ndarray habit; reject it loudly
    # instead of silently fancy-indexing rows.
    with pytest.raises(TypeError, match="rows only"):
        batch[0, 1]
    with pytest.raises(TypeError, match="rows only"):
        actions[0, 1]


def test_env_resolves_action_batch_through_index_column():
    # Setpoint columns on an ActionBatch are informational: the environment
    # must resolve through the validated index path, exactly like the serial
    # reference (out-of-range setpoint columns must not leak into the plant).
    from repro.env.vector_env import BatchedHVACEnvironment
    from repro.experiments.scenarios import get_scenario

    spec = get_scenario("pittsburgh/winter", days=1)
    make = lambda: BatchedHVACEnvironment([spec.build_environment(seed=1)])
    plain, decorated = make(), make()
    plain.reset(), decorated.reset()
    indices = np.array([2])
    bad_setpoints = ActionBatch(
        indices, heating_setpoints=[99.0], cooling_setpoints=[-99.0]
    )
    reference = plain.step(ActionBatch(indices))
    result = decorated.step(bad_setpoints)
    assert np.array_equal(
        reference.info.heating_setpoint, result.info.heating_setpoint
    )
    assert np.array_equal(np.asarray(reference.observations), np.asarray(result.observations))


def test_action_batch_roundtrip():
    batch = ActionBatch.from_indices([2, 0, 5])
    assert batch.tolist() == [2, 0, 5]
    assert not batch.has_setpoints
    resolved = batch.with_setpoints(np.asarray(ACTION_PAIRS, dtype=float))
    assert resolved.has_setpoints
    assert np.array_equal(resolved.heating_setpoints, [17.0, 15.0, 20.0])
    assert np.array_equal(resolved.cooling_setpoints, [24.0, 22.0, 27.0])
    assert np.asarray(batch).dtype == np.int64
    assert batch[1] == 0


def test_columnar_batch_rejects_row_count_mismatch():
    with pytest.raises(ValueError, match="rows"):
        ActionBatch(
            np.zeros(3, dtype=np.int64),
            heating_setpoints=np.zeros(4),
            cooling_setpoints=np.zeros(4),
        )
    with pytest.raises(ValueError, match="rows"):
        PolicyRequestBatch(policy_ids=np.array(["a", "b"]), observations=np.zeros((3, 6)))


def test_info_batch_mapping_protocol():
    info = InfoBatch(
        step=4,
        hour_of_day=np.array([8.0, 9.0]),
        occupied=np.array([1.0, 0.0]),
        zone_temperature=np.array([21.5, 19.0]),
    )
    assert info["step"] == 4
    assert "zone_temperature" in info
    assert "energy_proxy" not in info  # optional column left out
    assert set(info.keys()) >= {"step", "hour_of_day", "occupied"}
    with pytest.raises(KeyError):
        info["energy_proxy"]
    materialised = info.episode_info(1)
    assert materialised["step"] == 4
    assert materialised["zone_temperature"] == 19.0
    assert info.to_dict()["occupied"].dtype == np.float64
    with pytest.raises(ValueError, match="required"):
        InfoBatch(step=0, hour_of_day=None, occupied=np.zeros(2))


def test_policy_request_batch_grouping_cached():
    ids = np.array(["b", "a", "b", "c", "a"])
    batch = PolicyRequestBatch(policy_ids=ids, observations=np.zeros((5, 6)))
    codes, uniques = batch.grouping()
    assert uniques.tolist() == ["a", "b", "c"]
    assert codes.tolist() == [1, 0, 1, 2, 0]
    assert batch.grouping()[0] is codes  # cached, not recomputed
    assert batch.num_policies == 3
    single = PolicyRequestBatch.single_policy("only", np.zeros((4, 6)))
    assert single.num_policies == 1 and len(single) == 4


# ------------------------------------------------- env: columnar infos
def test_batched_env_info_columns_match_serial_dicts():
    from repro.env.vector_env import BatchedHVACEnvironment
    from repro.experiments.scenarios import get_scenario

    spec = get_scenario("pittsburgh/winter", days=1)
    seeds = [11, 12, 13]
    serial_envs = [spec.build_environment(seed=s) for s in seeds]
    batched = BatchedHVACEnvironment([spec.build_environment(seed=s) for s in seeds])

    rng = np.random.default_rng(0)
    observations, reset_info = batched.reset()
    assert isinstance(observations, ObservationBatch)
    assert isinstance(reset_info, InfoBatch)
    serial_obs = [env.reset()[0] for env in serial_envs]
    for i, obs in enumerate(serial_obs):
        assert np.array_equal(obs, observations[i])

    for step in range(24):
        actions = rng.integers(0, len(batched._pairs), size=len(seeds))
        result = batched.step(ActionBatch(actions))
        assert isinstance(result.info, InfoBatch)
        for i, env in enumerate(serial_envs):
            serial_result = env.step(int(actions[i]))
            assert np.array_equal(serial_result.observation, result.observations[i])
            episode = result.episode_info(i)
            for key, value in serial_result.info.items():
                assert episode[key] == value, f"{key} diverged at step {step}"


# ------------------------------------------- agents: columnar action batches
def test_select_actions_batch_accepts_observation_batch():
    from repro.agents import make_agent
    from repro.agents.base import BaseAgent
    from repro.agents.rule_based import RuleBasedAgent
    from repro.experiments.scenarios import get_scenario

    spec = get_scenario("tucson/summer", days=1)
    seeds = [3, 4]
    environments = [spec.build_environment(seed=s) for s in seeds]
    stacked = np.stack([env.reset()[0] for env in environments])
    batch_obs = ObservationBatch(stacked)

    rule_agents = [
        make_agent("rule_based", environment=e, seed=s)
        for e, s in zip(environments, seeds)
    ]
    for step in (0, 5, 40):
        from_batch = RuleBasedAgent.select_actions_batch(
            rule_agents, batch_obs, environments, step
        )
        from_array = RuleBasedAgent.select_actions_batch(
            rule_agents, stacked, environments, step
        )
        assert isinstance(from_batch, ActionBatch)
        assert from_batch.tolist() == from_array.tolist()
        reference = [
            agent.select_action(stacked[i], environments[i], step)
            for i, agent in enumerate(rule_agents)
        ]
        assert from_batch.tolist() == reference

    constant_agents = [
        make_agent("constant", environment=e, seed=s)
        for e, s in zip(environments, seeds)
    ]
    default_path = BaseAgent.select_actions_batch(
        constant_agents, batch_obs, environments, 0
    )
    assert isinstance(default_path, ActionBatch)
    assert default_path.tolist() == [
        agent.select_action(batch_obs[i], environments[i], 0)
        for i, agent in enumerate(constant_agents)
    ]


# ------------------------------------------------ serving: columnar vs legacy
def test_serve_columnar_matches_legacy_order_and_actions(tmp_path):
    from repro.serving import PolicyRequest, PolicyServer

    server = PolicyServer(store=str(tmp_path), cache_size=4)
    ids = []
    for seed in range(3):
        policy_id = f"building-{seed}"
        server.register(policy_id, random_policy(seed))
        ids.append(policy_id)

    rng = np.random.default_rng(7)
    rows = 257  # deliberately not a multiple of the policy count
    observations = rng.uniform(-6.0, 6.0, size=(rows, N_FEATURES))
    # Shuffled interleaving: grouping must restore exact request order.
    assigned = np.array([ids[i] for i in rng.integers(0, len(ids), size=rows)])

    legacy = server.serve(
        [
            PolicyRequest(policy_id=assigned[i], observation=observations[i])
            for i in range(rows)
        ]
    )
    columnar = server.serve_columnar(
        PolicyRequestBatch(policy_ids=assigned, observations=observations)
    )
    assert isinstance(columnar, PolicyResponseBatch)
    assert len(columnar) == rows
    for i, response in enumerate(legacy):
        assert response.policy_id == str(columnar.policy_ids[i])
        assert response.action_index == int(columnar.action_indices[i])
        assert response.heating_setpoint == int(columnar.heating_setpoints[i])
        assert response.cooling_setpoint == int(columnar.cooling_setpoints[i])
    # The adapter and the native path share stats bookkeeping.
    assert server.stats.requests == 2 * rows
    assert server.stats.batches == 2
    counts = server.stats.per_policy_requests
    for policy_id in ids:
        assert counts[policy_id] == 2 * int(np.sum(assigned == policy_id))

    # Round-trip through the legacy adapter objects.
    objects = columnar.to_responses()
    assert [r.action_index for r in objects] == columnar.action_indices.tolist()


def test_serve_columnar_single_policy_and_empty_and_unknown(tmp_path):
    from repro.serving import PolicyServer, UnknownPolicyError

    server = PolicyServer(store=str(tmp_path), cache_size=2)
    server.register("lone", random_policy(5))
    observations = np.random.default_rng(1).uniform(-6, 6, size=(33, N_FEATURES))
    response = server.serve_columnar(
        PolicyRequestBatch.single_policy("lone", observations)
    )
    expected = random_policy(5).predict_action_indices(observations)
    assert np.array_equal(response.action_indices, expected)

    empty = server.serve_columnar(
        PolicyRequestBatch(
            policy_ids=np.empty(0, dtype=str), observations=np.empty((0, N_FEATURES))
        )
    )
    assert len(empty) == 0
    assert empty.to_responses() == []

    with pytest.raises(UnknownPolicyError):
        server.serve_columnar(
            PolicyRequestBatch.single_policy("missing", observations[:1])
        )


# ----------------------------------------------------- float32 dtype policy
def _tiny_fitted_model(hidden=(32, 32)):
    from repro.agents.rule_based import RuleBasedAgent
    from repro.env.dataset import collect_historical_data
    from repro.env.hvac_env import make_environment
    from repro.nn.dynamics import ThermalDynamicsModel

    environment = make_environment(city="pittsburgh", days=1, seed=0)
    data = collect_historical_data(
        environment, RuleBasedAgent.from_config(environment), seed=1
    )
    model = ThermalDynamicsModel(hidden_sizes=hidden, seed=2)
    model.fit(data, epochs=8, seed=3)
    return environment, data, model


def test_float32_dynamics_predictions_track_float64():
    environment, _data, model = _tiny_fitted_model()
    rng = np.random.default_rng(4)
    states = rng.uniform(15, 30, size=500)
    disturbances = rng.uniform(0, 1, size=(500, 5))
    actions = rng.uniform(15, 28, size=(500, 2))
    reference = model.predict(states, disturbances, actions)
    assert model.inference_dtype == np.float64

    model.set_inference_dtype("float32")
    assert model.inference_dtype == np.float32
    fast = model.predict(states, disturbances, actions)
    assert fast.dtype == np.float64  # de-normalised back in the reference dtype
    assert np.allclose(fast, reference, atol=1e-3, rtol=1e-5)
    assert not np.array_equal(fast, reference)  # genuinely a different path

    # Switching back restores bit-exactness with the training network.
    model.set_inference_dtype("float64")
    assert np.array_equal(model.predict(states, disturbances, actions), reference)
    with pytest.raises(ValueError):
        model.set_inference_dtype("int8")


def test_float32_refit_invalidates_compiled_network():
    environment, data, model = _tiny_fitted_model(hidden=(16,))
    rng = np.random.default_rng(5)
    states = rng.uniform(15, 30, size=64)
    disturbances = rng.uniform(0, 1, size=(64, 5))
    actions = rng.uniform(15, 28, size=(64, 2))
    model.set_inference_dtype("float32")
    before = model.predict(states, disturbances, actions)
    model.fit(data, epochs=8, seed=99)  # different seed -> different weights
    after = model.predict(states, disturbances, actions)
    assert not np.array_equal(before, after)
    assert np.allclose(
        after,
        model.set_inference_dtype("float64").predict(states, disturbances, actions),
        atol=1e-3,
    )


def test_float32_ensemble_tracks_float64():
    from repro.env.dataset import collect_historical_data
    from repro.env.hvac_env import make_environment
    from repro.agents.rule_based import RuleBasedAgent
    from repro.nn.dynamics import EnsembleDynamicsModel

    environment = make_environment(city="pittsburgh", days=1, seed=0)
    data = collect_historical_data(
        environment, RuleBasedAgent.from_config(environment), seed=1
    )
    model = EnsembleDynamicsModel(num_members=2, hidden_sizes=(8,), seed=2)
    model.fit(data, epochs=4, seed=3)
    rng = np.random.default_rng(6)
    states = rng.uniform(15, 30, size=128)
    disturbances = rng.uniform(0, 1, size=(128, 5))
    actions = rng.uniform(15, 28, size=(128, 2))
    mean64, std64 = model.predict(states, disturbances, actions)
    model.set_inference_dtype("float32")
    mean32, std32 = model.predict(states, disturbances, actions)
    assert np.allclose(mean32, mean64, atol=1e-3)
    assert np.allclose(std32, std64, atol=1e-3)


def test_float32_distillation_label_agreement():
    from repro.agents.random_shooting import RandomShootingOptimizer
    from repro.core.decision_dataset import DecisionDatasetGenerator
    from repro.core.sampling import AugmentedHistoricalSampler

    environment, data, model = _tiny_fitted_model()
    optimizer = RandomShootingOptimizer(
        dynamics_model=model,
        action_space=environment.action_space,
        reward_config=environment.config.reward,
        action_config=environment.config.actions,
        num_samples=48,
        horizon=5,
        seed=7,
    )
    generator = DecisionDatasetGenerator(
        optimizer=optimizer,
        sampler=AugmentedHistoricalSampler.from_dataset(data),
        action_pairs=environment.action_space.pairs,
        monte_carlo_runs=3,
        planning_horizon=5,
    )
    reference = generator.generate(96, seed=11)
    model.set_inference_dtype("float32")
    fast = generator.generate(96, seed=11)
    agreement = float(np.mean(reference.action_labels == fast.action_labels))
    assert agreement >= 0.995, f"float32 labels diverged: agreement {agreement:.3f}"
    # The distillation inputs are drawn before any model call, so both runs
    # labelled identical observations.
    assert np.array_equal(reference.inputs, fast.inputs)


def test_distillation_accepts_observation_batch():
    from repro.agents.random_shooting import RandomShootingOptimizer
    from repro.core.decision_dataset import DecisionDatasetGenerator
    from repro.core.sampling import AugmentedHistoricalSampler

    environment, data, model = _tiny_fitted_model(hidden=(16,))
    optimizer = RandomShootingOptimizer(
        dynamics_model=model,
        action_space=environment.action_space,
        reward_config=environment.config.reward,
        action_config=environment.config.actions,
        num_samples=16,
        horizon=3,
        seed=8,
    )
    generator = DecisionDatasetGenerator(
        optimizer=optimizer,
        sampler=AugmentedHistoricalSampler.from_dataset(data),
        action_pairs=environment.action_space.pairs,
        monte_carlo_runs=2,
        planning_horizon=3,
    )
    rng = np.random.default_rng(12)
    inputs = generator.sampler.sample(24, rng)
    from_array = generator.distill_decisions(inputs, rng=np.random.default_rng(1))
    from_batch = generator.distill_decisions(
        ObservationBatch(inputs), rng=np.random.default_rng(1)
    )
    assert np.array_equal(from_array, from_batch)
    dataset = generator.generate(24, seed=13)
    assert isinstance(dataset.observation_batch(), ObservationBatch)
    actions = dataset.action_batch()
    assert isinstance(actions, ActionBatch)
    assert actions.has_setpoints
    assert np.array_equal(actions.indices, dataset.action_labels)


def test_pipeline_config_dtype_policy():
    from repro.core.pipeline import PipelineConfig

    assert PipelineConfig.tiny().dtype == "float64"
    assert PipelineConfig.tiny(dtype="float32").dtype == "float32"
    with pytest.raises(ValueError):
        PipelineConfig.tiny(dtype="float16")


def test_pipeline_runs_with_float32_dtype():
    from repro.core.pipeline import PipelineConfig, VerifiedPolicyPipeline

    config = PipelineConfig.tiny(
        seed=31, num_decision_data=32, training_epochs=5, dtype="float32"
    )
    result = VerifiedPolicyPipeline(config, store=None).run()
    assert result.dynamics_model.inference_dtype == np.float32
    assert result.policy.node_count >= 1
    # The persisted config round-trips the dtype (it is part of the store key).
    assert result.config.dtype == "float32"
