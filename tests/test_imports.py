"""Smoke test: every repro.* module must import.

Guards against dangling ``__init__`` exports like the seed's missing
``repro.core.pipeline`` (which made the whole ``repro.core`` package
unimportable).
"""

import importlib
import pkgutil

import pytest

import repro


def _all_module_names():
    names = ["repro"]
    for module in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        names.append(module.name)
    return sorted(names)


MODULES = _all_module_names()


@pytest.mark.parametrize("name", MODULES)
def test_module_imports(name):
    importlib.import_module(name)


def test_expected_packages_present():
    packages = {name.split(".")[1] for name in MODULES if name.count(".") == 1}
    assert {
        "agents",
        "analysis",
        "buildings",
        "core",
        "dtree",
        "env",
        "experiments",
        "nn",
        "utils",
        "weather",
    } <= packages


def test_core_public_api():
    core = importlib.import_module("repro.core")
    for name in core.__all__:
        assert hasattr(core, name), f"repro.core.__all__ exports missing name {name}"


def test_lazy_top_level_exports():
    for name in repro.__all__:
        assert getattr(repro, name) is not None
