"""VerifiedPolicyPipeline on a tiny configuration."""

import numpy as np
import pytest

from repro.agents.dt_agent import DecisionTreeAgent
from repro.core.pipeline import PipelineConfig, PipelineResult, VerifiedPolicyPipeline
from repro.core.tree_policy import TreePolicy
from repro.utils.config import ComfortConfig


@pytest.fixture(scope="module")
def tiny_result() -> PipelineResult:
    return VerifiedPolicyPipeline(PipelineConfig.tiny(seed=3)).run()


def test_returns_tree_policy_and_reports(tiny_result):
    assert isinstance(tiny_result.policy, TreePolicy)
    assert tiny_result.policy.leaf_count > 1
    assert 0.0 <= tiny_result.fidelity <= 1.0
    assert 0.0 <= tiny_result.verification.safe_probability <= 1.0
    assert tiny_result.verification.formal_report is not None
    assert tiny_result.verification.probabilistic_report is not None


def test_correction_guarantees_formal_criteria(tiny_result):
    # After leaf correction the policy must carry the 100% guarantee on #2/#3.
    assert tiny_result.verification.formal_report.satisfied


def test_policy_drives_environment(tiny_result):
    agent = tiny_result.agent()
    assert isinstance(agent, DecisionTreeAgent)
    env = VerifiedPolicyPipeline(tiny_result.config).build_environment()
    observation, _ = env.reset()
    for step in range(8):
        action = agent.select_action(observation, env, step)
        assert 0 <= action < env.action_space.n
        observation = env.step(action).observation


def test_stage_timings_and_summary(tiny_result):
    expected = {"environment", "historical_data", "dynamics_model", "extraction", "verification"}
    assert expected <= set(tiny_result.stage_seconds)
    summary = tiny_result.summary_dict()
    assert summary["city"] == "pittsburgh"
    assert summary["tree_leaves"] == tiny_result.policy.leaf_count


def test_pipeline_is_deterministic():
    a = VerifiedPolicyPipeline(PipelineConfig.tiny(seed=9)).run()
    b = VerifiedPolicyPipeline(PipelineConfig.tiny(seed=9)).run()
    assert a.policy.to_dict() == b.policy.to_dict()
    assert a.verification.safe_probability == b.verification.safe_probability
    assert np.allclose(a.decision_dataset.inputs, b.decision_dataset.inputs)


def test_reusing_intermediates_skips_stages(tiny_result):
    pipeline = VerifiedPolicyPipeline(tiny_result.config)
    rerun = pipeline.run(
        historical_data=tiny_result.historical_data,
        dynamics_model=tiny_result.dynamics_model,
        decision_dataset=tiny_result.decision_dataset,
    )
    assert rerun.policy.to_dict() == tiny_result.policy.to_dict()


def test_config_validation_and_season():
    with pytest.raises(ValueError):
        PipelineConfig(season="spring")
    summer = PipelineConfig.tiny(season="summer")
    assert summer.comfort == ComfortConfig.summer()
    assert summer.experiment_config().simulation.start_month == 7


def test_save_policy_round_trip(tmp_path, tiny_result):
    path = tmp_path / "policy.json"
    tiny_result.save_policy(path)
    from repro.utils.serialization import load_json

    payload = load_json(path)
    restored = TreePolicy.from_dict(payload["policy"])
    probe = np.array([22.0, 0.0, 60.0, 3.0, 100.0, 5.0])
    assert restored.setpoints_for(probe) == tiny_result.policy.setpoints_for(probe)
