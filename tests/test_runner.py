"""ExperimentRunner: rollouts, aggregation, determinism."""

import pytest

from repro.agents import ConstantAgent, make_agent
from repro.experiments.runner import ExperimentResult, ExperimentRunner, run_episode
from repro.experiments.scenarios import ScenarioSpec


def _strip_timing(result: ExperimentResult) -> dict:
    data = result.to_dict()
    data.pop("mean_steps_per_second")
    for episode in data["episodes"]:
        episode.pop("wall_seconds")
        episode.pop("steps_per_second")
    return data


def test_runner_basic_rollout():
    runner = ExperimentRunner("pittsburgh/winter", episodes=1, base_seed=0, max_steps=48)
    result = runner.run("rule_based")
    assert result.num_episodes == 1
    assert result.total_steps == 48
    episode = result.episodes[0]
    assert episode.agent == "rule_based"
    assert episode.scenario == "pittsburgh/winter/office"
    assert episode.total_energy_kwh >= 0.0
    assert 0.0 <= episode.comfort_violation_rate <= 1.0


def test_runner_accepts_spec_and_agent_instance():
    spec = ScenarioSpec(city="tucson", season="summer", days=1)
    runner = ExperimentRunner(spec, episodes=2, base_seed=4, max_steps=24)
    result = runner.run(ConstantAgent(20, 26))
    assert result.num_episodes == 2
    assert result.agent == "constant"
    assert {e.seed for e in result.episodes} == set(runner.episode_seeds())


def test_agent_config_only_with_names():
    runner = ExperimentRunner("pittsburgh", episodes=1, max_steps=8)
    with pytest.raises(ValueError, match="agent_config"):
        runner.run(ConstantAgent(20, 26), agent_config={"heating_setpoint": 21})


def test_same_seed_identical_experiment_result():
    # The determinism contract: same scenario + base seed + agent name
    # => byte-identical results (modulo wall-clock fields).
    kwargs = dict(episodes=3, base_seed=123, max_steps=96)
    first = ExperimentRunner("chicago/winter", **kwargs).run("random")
    second = ExperimentRunner("chicago/winter", **kwargs).run("random")
    assert _strip_timing(first) == _strip_timing(second)


def test_different_seeds_differ():
    first = ExperimentRunner("chicago/winter", episodes=1, base_seed=0, max_steps=96).run("random")
    second = ExperimentRunner("chicago/winter", episodes=1, base_seed=1, max_steps=96).run("random")
    assert _strip_timing(first) != _strip_timing(second)


def test_run_episode_standalone():
    env = ScenarioSpec(city="seattle", days=1).build_environment(seed=2)
    agent = make_agent("rule_based", environment=env)
    episode = run_episode(agent, env, max_steps=12, scenario_name="seattle/winter/office")
    assert episode.steps == 12
    assert episode.mean_zone_temperature > 0.0


def test_summary_row_matches_header():
    result = ExperimentRunner("pittsburgh", episodes=1, max_steps=8).run("constant")
    assert len(result.summary_row()) == len(ExperimentResult.SUMMARY_HEADER)
