"""Make the src/ layout importable without installation.

``pip install -e .`` makes this a no-op; running ``pytest`` from a fresh
checkout works either way.
"""

import sys
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))
