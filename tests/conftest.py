"""Make the src/ layout importable without installation.

``pip install -e .`` makes this a no-op; running ``pytest`` from a fresh
checkout works either way.
"""

import os
import sys
from pathlib import Path

import pytest

SRC = Path(__file__).resolve().parent.parent / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))


@pytest.fixture(scope="session", autouse=True)
def _isolated_policy_store(tmp_path_factory):
    """Point the default policy store at a session-temporary directory.

    The ``dt`` agent persists extracted policies by default; tests must not
    write to (or read stale artifacts from) the user's real store.
    """
    from repro.store import STORE_ENV_VAR

    previous = os.environ.get(STORE_ENV_VAR)
    os.environ[STORE_ENV_VAR] = str(tmp_path_factory.mktemp("policy-store"))
    yield
    if previous is None:
        os.environ.pop(STORE_ENV_VAR, None)
    else:
        os.environ[STORE_ENV_VAR] = previous
