"""Disturbance/fault layer: clean bit-identity, determinism, robustness goldens.

The contract under test, in order of importance:

1. a disabled or zero-magnitude disturbance profile is **bit-identical** to
   the clean environment — scalar and batched, across every runner backend;
2. identical ``(DisturbanceSpec, seed)`` pairs realise identical fault
   schedules and produce identical telemetry across runs, backends and
   serving topologies (shards=1 vs sharded fleet);
3. each fault class does what its name says (dropout holds the last report,
   stuck dampers freeze setpoints, DR relaxes them, degradation weakens the
   plant, surprises scale people but not the schedule);
4. the robustness table of the classical controllers is pinned to committed
   golden figures, so controller or environment drift fails loudly.
"""

from pathlib import Path

import numpy as np
import pytest

from repro.analysis.engine import run_lint
from repro.data import InfoBatch
from repro.env import (
    DISTURBANCES,
    BatchedHVACEnvironment,
    DisturbanceSpec,
    available_disturbances,
    get_disturbance,
    make_environment,
)
from repro.experiments.runner import ExperimentRunner
from repro.experiments.scenarios import ScenarioSpec, scenario_grid
from repro.fleet import FleetGroup, FleetLoop
from repro.serving import ShardedPolicyServer

DAYS = 1


def scalar_env(seed=0, disturbance=None, **kwargs):
    return make_environment(
        city="pittsburgh", season="winter", days=DAYS, seed=seed,
        disturbance=disturbance, **kwargs,
    )


def rollout(env, stride=7):
    """Deterministic action-cycling rollout; returns (observations, rewards, infos)."""
    obs, _ = env.reset()
    observations = [np.asarray(obs).copy()]
    rewards, infos = [], []
    n = len(env.action_space.pairs)
    for t in range(env.num_steps):
        result = env.step((t * stride) % n)
        observations.append(np.asarray(result.observation).copy())
        rewards.append(result.reward)
        infos.append(dict(result.info))
    return np.array(observations), np.array(rewards), infos


def episode_dicts(result):
    """Episode payloads with the wall-clock timing fields removed."""
    rows = []
    for episode in result.episodes:
        row = episode.to_dict()
        row.pop("wall_seconds", None)
        row.pop("steps_per_second", None)
        rows.append(row)
    return rows


def rollout_batched(envs, stride=7):
    batch = BatchedHVACEnvironment(envs)
    obs, _ = batch.reset()
    observations = [np.asarray(obs).copy()]
    rewards, infos = [], []
    n = len(batch._pairs)
    for t in range(batch.num_steps):
        actions = np.full(batch.batch_size, (t * stride) % n, dtype=np.int64)
        result = batch.step(actions)
        observations.append(np.asarray(result.observations).copy())
        rewards.append(result.rewards.copy())
        infos.append(result.info)
    return np.array(observations), np.array(rewards), infos


# ---------------------------------------------------------- clean bit-identity
class TestCleanEquivalence:
    def test_scalar_disabled_profiles_are_bit_identical(self):
        base_obs, base_rew, base_infos = rollout(scalar_env(seed=3))
        for disturbance in (
            "clean",
            DisturbanceSpec(),
            DisturbanceSpec(sensor_noise_std=0.0, stuck_damper_rate=0.0),
        ):
            obs, rew, infos = rollout(scalar_env(seed=3, disturbance=disturbance))
            assert np.array_equal(base_obs, obs)
            assert np.array_equal(base_rew, rew)
            assert infos == base_infos

    def test_clean_env_has_no_fault_telemetry_keys(self):
        env = scalar_env(seed=1)
        env.reset()
        info = env.step(0).info
        for key in ("sensor_dropped", "actuator_stuck", "demand_response"):
            assert key not in info

    def test_batched_disabled_profiles_are_bit_identical(self):
        seeds = (1, 2, 3)
        base = rollout_batched([scalar_env(seed=s) for s in seeds])
        spec = rollout_batched(
            [scalar_env(seed=s, disturbance="clean") for s in seeds]
        )
        assert np.array_equal(base[0], spec[0])
        assert np.array_equal(base[1], spec[1])
        # clean batches carry no fault columns either
        for info in spec[2]:
            assert "sensor_dropped" not in info

    @pytest.mark.parametrize("backend", ["serial", "batched", "process"])
    def test_runner_backends_match_pre_disturbance_results(self, backend):
        plain = ScenarioSpec.from_name("pittsburgh/winter/office", days=DAYS)
        clean = ScenarioSpec.from_name("pittsburgh/winter/office/clean", days=DAYS)
        assert clean == plain  # "clean" is the default, not a distinct cell
        kwargs = dict(episodes=3, base_seed=5, backend=backend, workers=2)
        result_plain = ExperimentRunner(plain, **kwargs).run("hysteresis")
        result_clean = ExperimentRunner(clean, **kwargs).run("hysteresis")
        assert episode_dicts(result_plain) == episode_dicts(result_clean)

    @pytest.mark.parametrize("backend", ["batched", "process"])
    def test_runner_backends_match_serial_under_faults(self, backend):
        spec = ScenarioSpec.from_name("pittsburgh/winter/office/rough_day", days=DAYS)
        kwargs = dict(episodes=3, base_seed=5, workers=2)
        serial = ExperimentRunner(spec, backend="serial", **kwargs).run("pid")
        other = ExperimentRunner(spec, backend=backend, **kwargs).run("pid")
        for a, b in zip(serial.episodes, other.episodes):
            assert a.total_reward == b.total_reward
            assert a.total_energy_kwh == b.total_energy_kwh
            assert a.comfort_violation_steps == b.comfort_violation_steps


# -------------------------------------------------------------- determinism
class TestScheduleDeterminism:
    def test_identical_spec_and_seed_realise_identical_schedules(self):
        spec = DISTURBANCES["rough_day"]
        a = spec.realise(96, seed=42)
        b = spec.realise(96, seed=42)
        for field in ("zone_noise", "sensor_dropped", "stuck", "dr_active"):
            left, right = getattr(a, field), getattr(b, field)
            assert (left is None) == (right is None)
            if left is not None:
                assert np.array_equal(left, right)

    def test_component_streams_are_independent(self):
        # Enabling an unrelated fault class must not shift another's schedule.
        stuck_only = DisturbanceSpec(stuck_damper_rate=0.1).realise(96, seed=7)
        combined = DisturbanceSpec(
            stuck_damper_rate=0.1, sensor_noise_std=0.5, demand_response_rate=0.1
        ).realise(96, seed=7)
        assert np.array_equal(stuck_only.stuck, combined.stuck)

    def test_different_seeds_differ(self):
        spec = DISTURBANCES["sensor_noise"]
        assert not np.array_equal(
            spec.realise(96, seed=0).zone_noise, spec.realise(96, seed=1).zone_noise
        )

    def test_telemetry_identical_across_runs(self):
        spec = ScenarioSpec.from_name("pittsburgh/winter/office/rough_day", days=DAYS)
        kwargs = dict(episodes=2, base_seed=9, backend="serial")
        first = ExperimentRunner(spec, **kwargs).run("hysteresis")
        second = ExperimentRunner(spec, **kwargs).run("hysteresis")
        assert episode_dicts(first) == episode_dicts(second)

    def test_reprolint_rng_rule_covers_disturbances_with_empty_baseline(self):
        import repro.env.disturbances as module

        result = run_lint(Path(module.__file__), only=("REP005",))
        assert result.file_count == 1
        assert result.findings == []  # empty baseline: nothing absorbed either
        assert result.baselined_count == 0
        assert result.ok


class TestFleetShardDeterminism:
    """shards=1 vs sharded serving produce identical fault-fleet telemetry."""

    def make_loop(self, num_shards):
        from tests.test_fleet import tree_policy_for

        group = FleetGroup.from_scenario(
            "pittsburgh/winter/office/rough_day",
            policy_id="inc",
            num_buildings=8,
            base_seed=0,
            days=DAYS,
        )
        policy = tree_policy_for(group.env.environments[0], seed=11)
        server = ShardedPolicyServer(
            store=False, num_shards=num_shards, timeout=10.0, heartbeat_interval=None
        )
        try:
            server.register("inc", policy)
            loop = FleetLoop(server, [group])
            loop.run(4)
        finally:
            server.close()
        return loop

    def test_sharded_fleet_telemetry_bit_identical(self):
        local = self.make_loop(num_shards=1)
        sharded = self.make_loop(num_shards=2)
        assert local.telemetry.lost_ticks == sharded.telemetry.lost_ticks == 0
        assert local.telemetry.equals(sharded.telemetry)


# ----------------------------------------------------------- fault behaviour
class TestFaultBehaviour:
    def test_sensor_dropout_repeats_last_report(self):
        env = scalar_env(seed=2, disturbance="sensor_dropout")
        schedule = env.disturbance
        assert schedule is not None and schedule.sensor_dropped is not None
        assert not schedule.sensor_dropped[0]
        obs, _ = env.reset()
        last = float(np.asarray(obs)[0])
        for t in range(env.num_steps):
            result = env.step(0)
            reported = float(np.asarray(result.observation)[0])
            if schedule.sensor_dropped[t + 1]:
                assert reported == last
            # the info flag records the dropout state at the *step* index
            assert result.info["sensor_dropped"] == float(schedule.sensor_dropped[t])
            last = reported

    def test_stuck_damper_freezes_applied_setpoints(self):
        env = scalar_env(seed=4, disturbance="stuck_damper")
        schedule = env.disturbance
        assert schedule is not None and schedule.stuck is not None
        env.reset()
        pairs = env.action_space.pairs
        previous = None
        for t in range(env.num_steps):
            action = t % len(pairs)
            info = env.step(action).info
            applied = (info["heating_setpoint"], info["cooling_setpoint"])
            if t > 0 and schedule.stuck[t]:
                assert applied == previous
                assert info["actuator_stuck"] == 1.0
            previous = applied

    def test_demand_response_relaxes_setpoints(self):
        spec = DisturbanceSpec(
            demand_response_rate=0.2, demand_response_steps=4,
            demand_response_setback_c=2.0,
        )
        env = scalar_env(seed=6, disturbance=spec)
        schedule = env.disturbance
        assert schedule is not None and schedule.dr_active is not None
        env.reset()
        comfortable = env.action_space.to_index(21, 23)
        clip = env.config.actions.clip
        for t in range(env.num_steps):
            info = env.step(comfortable).info
            if schedule.dr_active[t] and not info["actuator_stuck"]:
                assert info["demand_response"] == 1.0
                assert (info["heating_setpoint"], info["cooling_setpoint"]) == clip(
                    21 - 2.0, 23 + 2.0
                )

    def test_cycling_limit_holds_pairs_for_minimum_steps(self):
        env = scalar_env(seed=0, disturbance="short_cycle")
        env.reset()
        limit = DISTURBANCES["short_cycle"].cycling_limit_steps
        pairs = env.action_space.pairs
        applied = []
        for t in range(4 * limit):
            info = env.step(t % len(pairs)).info
            applied.append((info["heating_setpoint"], info["cooling_setpoint"]))
        changes = [i for i in range(1, len(applied)) if applied[i] != applied[i - 1]]
        assert all(b - a >= limit for a, b in zip(changes, changes[1:]))

    def test_weak_hvac_degrades_the_plant(self):
        clean = scalar_env(seed=0)
        weak = scalar_env(seed=0, disturbance="weak_hvac")
        factor = DISTURBANCES["weak_hvac"].capacity_factor
        for name, unit in clean.building.hvac_units.items():
            degraded = weak.building.hvac_units[name]
            assert degraded.proportional_gain_w_per_k == pytest.approx(
                unit.proportional_gain_w_per_k * factor
            )
            assert degraded.zone.max_heating_power_w == pytest.approx(
                unit.zone.max_heating_power_w * factor
            )

    def test_occupancy_surprise_scales_people_not_schedule(self):
        spec = DisturbanceSpec(
            occupancy_surprise_rate=0.05, occupancy_surprise_steps=8,
            occupancy_surprise_scale=3.0,
        )
        clean = scalar_env(seed=8)
        surprised = scalar_env(seed=8, disturbance=spec)
        scale = surprised.disturbance.occupancy_scale
        assert scale is not None
        assert np.array_equal(surprised.occupancy.occupied, clean.occupancy.occupied)
        assert np.array_equal(
            surprised.occupancy.counts, clean.occupancy.counts * scale
        )

    def test_weather_events_shift_outdoor_temperature_only(self):
        spec = DisturbanceSpec(
            weather_event_rate=0.1, weather_event_steps=12, weather_shift_c=8.0
        )
        clean = scalar_env(seed=12)
        hot = scalar_env(seed=12, disturbance=spec)
        shift = hot.disturbance.weather_shift
        assert shift is not None and shift.any()
        assert np.array_equal(
            hot.weather.outdoor_temperature, clean.weather.outdoor_temperature + shift
        )
        assert np.array_equal(hot.weather.solar_radiation, clean.weather.solar_radiation)

    def test_batched_matches_scalar_under_mixed_faults(self):
        profiles = ["rough_day", None, "sensor_dropout", "short_cycle"]
        seeds = (1, 2, 3, 4)
        scalar_envs = [scalar_env(seed=s, disturbance=p) for s, p in zip(seeds, profiles)]
        batch_envs = [scalar_env(seed=s, disturbance=p) for s, p in zip(seeds, profiles)]
        scalar_results = [rollout(env) for env in scalar_envs]
        batch_obs, batch_rew, batch_infos = rollout_batched(batch_envs)
        for i, (obs, rew, infos) in enumerate(scalar_results):
            assert np.array_equal(obs, batch_obs[:, i])
            assert np.array_equal(rew, batch_rew[:, i])
            for t, info in enumerate(infos):
                for key in ("sensor_dropped", "actuator_stuck", "demand_response"):
                    assert info.get(key, 0.0) == batch_infos[t][key][i]

    def test_info_batch_carries_fault_columns(self):
        batch = BatchedHVACEnvironment(
            [scalar_env(seed=1, disturbance="rough_day"), scalar_env(seed=2)]
        )
        batch.reset()
        info = batch.step(np.zeros(2, dtype=np.int64)).info
        assert isinstance(info, InfoBatch)
        for key in ("sensor_dropped", "actuator_stuck", "demand_response"):
            assert key in info
            assert info[key].shape == (2,)


# ------------------------------------------------------------------ scenarios
class TestScenarioIntegration:
    def test_four_part_names_round_trip(self):
        spec = ScenarioSpec.from_name(
            "pittsburgh/winter/office/sensor_dropout", days=DAYS
        )
        assert spec.disturbance == "sensor_dropout"
        assert spec.name == "pittsburgh/winter/office/sensor_dropout"
        assert ScenarioSpec.from_name(spec.name, days=DAYS) == spec

    def test_unknown_disturbance_is_rejected(self):
        with pytest.raises(ValueError, match="Unknown disturbance"):
            ScenarioSpec.from_name("pittsburgh/winter/office/nope", days=DAYS)

    def test_grid_is_unchanged_by_default_and_expands_on_request(self):
        default = scenario_grid(cities=["pittsburgh"], seasons=["winter"])
        assert all(s.disturbance == "clean" for s in default)
        expanded = scenario_grid(
            cities=["pittsburgh"], seasons=["winter"],
            disturbances=["clean", "rough_day"],
        )
        assert len(expanded) == 2 * len(default)

    def test_presets_registry(self):
        assert set(available_disturbances()) == set(DISTURBANCES)
        assert get_disturbance("clean").enabled is False
        assert get_disturbance(DisturbanceSpec(sensor_noise_std=1.0)).enabled
        with pytest.raises(ValueError, match="Unknown disturbance"):
            get_disturbance("nope")


# ----------------------------------------------------------- golden figures
#: Committed robustness goldens: (mean_total_reward, mean_energy_kwh,
#: mean_comfort_violation_rate) for pittsburgh/winter/office, days=1,
#: episodes=1, base_seed=0, serial backend.  Everything here is exactly
#: deterministic, so the tolerance only absorbs float-repr rounding.
GOLDEN_ROBUSTNESS = {
    ("rule_based", "clean"): (-53.2519655772, 18.2175475665, 0.1875),
    ("hysteresis", "clean"): (-7.9493762962, 24.6428062803, 0.0833333333),
    ("pid", "clean"): (-10.5621405552, 25.7507480140, 0.0833333333),
    ("ema", "clean"): (-4.9693762962, 19.3847163975, 0.0833333333),
    ("rule_based", "sensor_noise"): (-53.2519655772, 18.2175475665, 0.1875),
    ("hysteresis", "sensor_noise"): (-7.3193762962, 27.4922536660, 0.0833333333),
    ("pid", "sensor_noise"): (-10.4621405552, 34.1646196447, 0.0833333333),
    ("ema", "sensor_noise"): (-5.0393762962, 19.9299023238, 0.0833333333),
    ("rule_based", "weak_hvac"): (-64.6173511071, 16.7129528749, 0.375),
    ("hysteresis", "weak_hvac"): (-16.6390162259, 21.2521482453, 0.2291666667),
    ("pid", "weak_hvac"): (-18.6320893059, 21.9045727381, 0.1875),
    ("ema", "weak_hvac"): (-14.0990162259, 16.9362963478, 0.2291666667),
    ("rule_based", "rough_day"): (-53.1993362095, 17.7549789653, 0.25),
    ("hysteresis", "rough_day"): (-9.9509308215, 23.2148562702, 0.125),
    ("pid", "rough_day"): (-12.8602685816, 26.6039345086, 0.1041666667),
    ("ema", "rough_day"): (-7.6709308215, 19.0857449387, 0.125),
}


class TestGoldenRobustnessTable:
    @pytest.mark.parametrize("fault", ["clean", "sensor_noise", "weak_hvac", "rough_day"])
    def test_classical_agents_match_goldens(self, fault):
        spec = ScenarioSpec.from_name(f"pittsburgh/winter/office/{fault}", days=DAYS)
        runner = ExperimentRunner(spec, episodes=1, base_seed=0, backend="serial")
        for agent in ("rule_based", "hysteresis", "pid", "ema"):
            result = runner.run(agent)
            reward, energy, violation = GOLDEN_ROBUSTNESS[(agent, fault)]
            assert result.mean_total_reward == pytest.approx(reward, abs=1e-9)
            assert result.mean_energy_kwh == pytest.approx(energy, abs=1e-9)
            assert result.mean_comfort_violation_rate == pytest.approx(
                violation, abs=1e-9
            )
