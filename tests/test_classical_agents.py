"""Classical baseline controllers: PID anti-windup, EMA warm-up, batch identity.

The batched fast paths of both controllers promise element-wise equality with
the per-episode ``select_action`` loop; those promises are enforced here with
exact (``==``, not approx) comparisons across full episodes.
"""

import numpy as np
import pytest

from repro.agents import EMAAgent, PIDAgent
from repro.agents.registry import available_agents, make_agent
from repro.env import BatchedHVACEnvironment, make_environment
from repro.utils.config import ComfortConfig


def env_for(seed=0, disturbance=None):
    return make_environment(
        city="pittsburgh", season="winter", days=1, seed=seed,
        disturbance=disturbance,
    )


def occupied_step(env):
    """First occupied step index of the environment's schedule."""
    return int(np.argmax(np.asarray(env.occupancy.occupied, dtype=bool)))


class TestRegistry:
    def test_registered_with_aliases(self):
        names = available_agents()
        assert "pid" in names and "ema" in names
        env = env_for()
        assert isinstance(make_agent("pi", environment=env), PIDAgent)
        assert isinstance(make_agent("smoothed", environment=env), EMAAgent)

    def test_from_config_defaults_comfort_from_environment(self):
        env = env_for()
        agent = PIDAgent.from_config(environment=env)
        assert agent.comfort == env.config.reward.comfort
        assert EMAAgent.from_config(season="summer").comfort == ComfortConfig.for_season(
            "summer"
        )


class TestPID:
    def test_anti_windup_clamps_the_integrator(self):
        agent = PIDAgent(comfort=ComfortConfig.winter(), windup_limit=3.0)
        env = env_for()
        step = occupied_step(env)
        # A persistently cold zone drives error > 0 every call; the integral
        # must saturate at the clamp instead of growing without bound.
        freezing = np.array([5.0, 0.0, 0.0, 0.0])
        for _ in range(50):
            agent.select_action(freezing, env, step)
        assert agent._integral == 3.0
        boiling = np.array([45.0, 0.0, 0.0, 0.0])
        for _ in range(50):
            agent.select_action(boiling, env, step)
        assert agent._integral == -3.0

    def test_unoccupied_step_resets_state_and_releases_plant(self):
        env = env_for()
        agent = PIDAgent.from_config(environment=env)
        step = occupied_step(env)
        agent.select_action(np.array([10.0, 0.0, 0.0, 0.0]), env, step)
        assert agent._integral != 0.0 and agent._has_prev
        unoccupied = int(np.argmin(np.asarray(env.occupancy.occupied, dtype=bool)))
        action = agent.select_action(np.array([10.0, 0.0, 0.0, 0.0]), env, unoccupied)
        assert agent._integral == 0.0 and not agent._has_prev
        off = env.action_space.to_index(
            *env.config.actions.clip(*env.config.actions.off_setpoints())
        )
        assert action == off

    def test_derivative_is_zero_until_second_sample(self):
        comfort = ComfortConfig.winter()
        kd_only = PIDAgent(comfort=comfort, kp=0.0, ki=0.0, kd=50.0)
        plain = PIDAgent(comfort=comfort, kp=0.0, ki=0.0, kd=0.0)
        env = env_for()
        step = occupied_step(env)
        obs = np.array([comfort.midpoint - 2.0, 0.0, 0.0, 0.0])
        # First occupied call: no previous error, derivative contributes nothing.
        assert kd_only.select_action(obs, env, step) == plain.select_action(
            obs, env, step
        )
        # Second call with a changed error: the huge kd must now show up.
        obs2 = np.array([comfort.midpoint - 4.0, 0.0, 0.0, 0.0])
        assert kd_only.select_action(obs2, env, step) != plain.select_action(
            obs2, env, step
        )

    def test_validation(self):
        with pytest.raises(ValueError, match="windup_limit"):
            PIDAgent(windup_limit=0.0)
        with pytest.raises(ValueError, match="band"):
            PIDAgent(band=-1.0)


class TestEMA:
    def test_warm_up_seeds_with_first_sample(self):
        agent = EMAAgent(comfort=ComfortConfig.winter(), alpha=0.3)
        assert agent._advance_filter(19.0) == 19.0
        assert agent._advance_filter(25.0) == pytest.approx(19.0 + 0.3 * 6.0)

    def test_filter_tracks_through_unoccupied_steps(self):
        env = env_for()
        agent = EMAAgent.from_config(environment=env)
        unoccupied = int(np.argmin(np.asarray(env.occupancy.occupied, dtype=bool)))
        action = agent.select_action(np.array([5.0, 0.0, 0.0, 0.0]), env, unoccupied)
        assert agent._ema == 5.0  # filter advanced even though the plant is off
        off = env.action_space.to_index(
            *env.config.actions.clip(*env.config.actions.off_setpoints())
        )
        assert action == off

    def test_threshold_law(self):
        env = env_for()
        agent = EMAAgent.from_config(environment=env, alpha=1.0)
        step = occupied_step(env)
        actions = env.config.actions
        off_heating, off_cooling = actions.off_setpoints()
        midpoint = agent.comfort.midpoint
        cold = agent.select_action(np.array([agent.heat_below - 1.0, 0, 0, 0]), env, step)
        assert cold == env.action_space.to_index(
            *actions.clip(midpoint, off_cooling)
        )
        hot = agent.select_action(np.array([agent.cool_above + 1.0, 0, 0, 0]), env, step)
        assert hot == env.action_space.to_index(
            *actions.clip(off_heating, midpoint)
        )
        mild = agent.select_action(np.array([midpoint, 0, 0, 0]), env, step)
        assert mild == env.action_space.to_index(
            *actions.clip(off_heating, off_cooling)
        )

    def test_validation(self):
        with pytest.raises(ValueError, match="alpha"):
            EMAAgent(alpha=0.0)
        with pytest.raises(ValueError, match="alpha"):
            EMAAgent(alpha=1.5)
        with pytest.raises(ValueError, match="margin"):
            EMAAgent(margin=-0.1)
        with pytest.raises(ValueError, match="margin"):
            EMAAgent(comfort=ComfortConfig.winter(), margin=10.0)


class TestBatchIdentity:
    """Batched selection must equal the per-row loop bit-for-bit, stateful."""

    @pytest.mark.parametrize("agent_cls", [PIDAgent, EMAAgent])
    @pytest.mark.parametrize("disturbance", [None, "rough_day"])
    def test_batch_matches_serial_over_full_episode(self, agent_cls, disturbance):
        seeds = (1, 2, 3, 4)
        batch_envs = [env_for(seed=s, disturbance=disturbance) for s in seeds]
        serial_envs = [env_for(seed=s, disturbance=disturbance) for s in seeds]
        batch = BatchedHVACEnvironment(batch_envs)
        batch_agents = agent_cls.for_environments(batch_envs)
        serial_agents = agent_cls.for_environments(serial_envs)

        obs_batch, _ = batch.reset()
        serial_obs = [np.asarray(env.reset()[0]) for env in serial_envs]
        for step in range(batch.num_steps):
            batched = agent_cls.select_actions_batch(
                batch_agents, obs_batch, batch_envs, step
            )
            expected = [
                agent.select_action(obs, env, step)
                for agent, obs, env in zip(serial_agents, serial_obs, serial_envs)
            ]
            assert list(np.asarray(batched)) == expected
            result = batch.step(np.asarray(batched))
            obs_batch = result.observations
            serial_obs = [
                np.asarray(env.step(a).observation)
                for env, a in zip(serial_envs, expected)
            ]
        # Controller state stayed in lockstep too.
        for a, b in zip(batch_agents, serial_agents):
            if agent_cls is PIDAgent:
                assert (a._integral, a._prev_error, a._has_prev) == (
                    b._integral, b._prev_error, b._has_prev
                )
            else:
                assert a._ema == b._ema

    def test_pid_falls_back_on_heterogeneous_action_spaces(self):
        envs = [env_for(seed=1), env_for(seed=2)]
        # Give the second environment a different discrete action table.
        from dataclasses import replace

        from repro.env.spaces import SetpointSpace

        narrow = replace(envs[1].config.actions, heating_min=17, cooling_max=28)
        envs[1].config = replace(envs[1].config, actions=narrow)
        envs[1].action_space = SetpointSpace(narrow)
        agents = PIDAgent.for_environments(envs)
        obs = np.stack([np.asarray(env.reset()[0]) for env in envs])
        step = occupied_step(envs[0])
        batched = PIDAgent.select_actions_batch(agents, obs, envs, step)
        fresh = PIDAgent.for_environments(envs)
        expected = [
            agent.select_action(row, env, step)
            for agent, row, env in zip(fresh, np.asarray(obs), envs)
        ]
        assert list(np.asarray(batched)) == expected
