"""Packed policy arena: format round-trip, zero-copy views, integrity,
server fallback, shared-mapping sharded serving, and the CLI surface."""

import json
import struct

import numpy as np
import pytest

from repro.core.tree_policy import TreePolicy
from repro.data import PolicyRequestBatch
from repro.dtree.cart import DecisionTreeClassifier
from repro.serving import CompiledTreePolicy, PolicyServer, ShardedPolicyServer
from repro.store import (
    ARENA_MAGIC,
    ArenaIntegrityError,
    PolicyArena,
    PolicyKey,
    PolicyStore,
    resolve_arena,
    write_arena,
)

N_FEATURES = 6
ACTION_PAIRS = [(15 + i, 22 + i) for i in range(8)]
FEATURE_NAMES = [f"f{i}" for i in range(N_FEATURES)]


def random_policy(seed: int, rows: int = 120) -> TreePolicy:
    """A tree fitted on random data — irregular shape, random thresholds."""
    rng = np.random.default_rng(seed)
    features = rng.uniform(-5.0, 5.0, size=(rows, N_FEATURES))
    labels = rng.integers(0, len(ACTION_PAIRS), size=rows)
    tree = DecisionTreeClassifier(max_depth=int(rng.integers(2, 7)))
    tree.fit(features, labels)
    return TreePolicy(tree, action_pairs=ACTION_PAIRS, feature_names=FEATURE_NAMES)


@pytest.fixture()
def packed_store(tmp_path):
    """A store holding six random policies plus its packed arena."""
    store = PolicyStore(tmp_path / "store")
    names = []
    for seed in range(6):
        key = PolicyKey(
            city=f"city{seed}",
            season="summer",
            building="office",
            seed=seed,
            config_hash=f"{seed:012x}",
        )
        names.append(store.put_policy(key, random_policy(seed)).key.name)
    arena_path = store.pack()
    return store, arena_path, names


# ------------------------------------------------------------- round-trip
def test_arena_matches_json_for_every_policy(packed_store):
    store, arena_path, names = packed_store
    rng = np.random.default_rng(99)
    probes = rng.uniform(-6.0, 6.0, size=(300, N_FEATURES))
    with PolicyArena(arena_path, verify=True) as arena:
        assert sorted(arena.policy_ids()) == sorted(names)
        assert len(arena) == len(names)
        for name in names:
            handle = arena.get(name)
            stored = store.find(name)
            reference = CompiledTreePolicy.from_policy(stored.policy)
            assert np.array_equal(
                handle.predict_batch(probes), reference.predict_batch(probes)
            )
            assert np.array_equal(handle.action_pairs, reference.action_pairs)
            assert handle.feature_names == reference.feature_names


def test_arena_views_are_zero_copy_and_frozen(packed_store):
    _, arena_path, names = packed_store
    with PolicyArena(arena_path) as arena:
        handle = arena.get(names[0])
        for name in ("feature", "threshold", "left", "right",
                     "leaf_action", "action_pairs"):
            view = getattr(handle, name)
            assert not view.flags.writeable
            assert not view.flags.owndata  # a view into the mapping, not a copy
            with pytest.raises((ValueError, RuntimeError)):
                view[..., 0] = 1
        # Handles are cached: the second get hands back the same object.
        assert arena.get(names[0]) is handle
        assert arena.get("no/such/policy") is None


def test_write_arena_rejects_duplicates_and_empty(tmp_path):
    policy = CompiledTreePolicy.from_policy(random_policy(0))
    with pytest.raises(ValueError, match="duplicate"):
        write_arena(tmp_path / "a.arena", [("p", policy), ("p", policy)])
    with pytest.raises(ValueError, match="empty arena"):
        write_arena(tmp_path / "a.arena", [])
    store = PolicyStore(tmp_path / "empty")
    with pytest.raises(ValueError, match="no stored policies"):
        store.pack()


# ------------------------------------------------- compiled-policy plumbing
def test_compiled_init_skips_copy_for_declared_dtypes():
    reference = CompiledTreePolicy.from_policy(random_policy(3))
    arrays = {
        "feature": np.ascontiguousarray(reference.feature),
        "threshold": np.ascontiguousarray(reference.threshold),
        "left": np.ascontiguousarray(reference.left),
        "right": np.ascontiguousarray(reference.right),
        "leaf_action": np.ascontiguousarray(reference.leaf_action),
        "action_pairs": np.ascontiguousarray(reference.action_pairs),
    }
    rebuilt = CompiledTreePolicy(
        n_features=reference.n_features,
        depth=reference.depth,
        feature_names=reference.feature_names,
        **arrays,
    )
    for name, array in arrays.items():
        assert getattr(rebuilt, name) is array  # no silent np.asarray copy
    # Mismatched dtypes still convert (the compatibility path).
    converted = CompiledTreePolicy(
        n_features=reference.n_features,
        depth=reference.depth,
        feature_names=reference.feature_names,
        feature=arrays["feature"].astype(np.int64),
        threshold=arrays["threshold"],
        left=arrays["left"],
        right=arrays["right"],
        leaf_action=arrays["leaf_action"],
        action_pairs=arrays["action_pairs"],
    )
    assert converted.feature.dtype == np.int32


def test_from_views_rejects_wrong_dtype_and_freezes():
    reference = CompiledTreePolicy.from_policy(random_policy(4))
    kwargs = dict(
        feature=reference.feature,
        threshold=reference.threshold,
        left=reference.left,
        right=reference.right,
        leaf_action=reference.leaf_action,
        action_pairs=reference.action_pairs,
        n_features=reference.n_features,
        depth=reference.depth,
        feature_names=reference.feature_names,
    )
    frozen = CompiledTreePolicy.from_views(**kwargs)
    assert not frozen.feature.flags.writeable
    bad = dict(kwargs)
    bad["threshold"] = reference.threshold.astype(np.float32)
    with pytest.raises(ValueError, match="from_views requires"):
        CompiledTreePolicy.from_views(**bad)
    bad = dict(kwargs)
    bad["feature"] = reference.feature.tolist()
    with pytest.raises(ValueError, match="from_views requires"):
        CompiledTreePolicy.from_views(**bad)


# --------------------------------------------------------------- integrity
def test_truncated_arena_fails_verification(packed_store):
    _, arena_path, _ = packed_store
    data = arena_path.read_bytes()
    arena_path.write_bytes(data[: len(data) // 2])
    with pytest.raises(ArenaIntegrityError):
        PolicyArena(arena_path)


def test_bad_magic_and_version_fail(packed_store):
    _, arena_path, _ = packed_store
    data = bytearray(arena_path.read_bytes())
    bad_magic = bytearray(data)
    bad_magic[:8] = b"NOTMYFMT"
    arena_path.write_bytes(bytes(bad_magic))
    with pytest.raises(ArenaIntegrityError, match="magic"):
        PolicyArena(arena_path)
    bad_version = bytearray(data)
    bad_version[8:12] = struct.pack("<I", 999)
    arena_path.write_bytes(bytes(bad_version))
    with pytest.raises(ArenaIntegrityError, match="version"):
        PolicyArena(arena_path)


def test_flipped_payload_byte_fails_crc(packed_store):
    _, arena_path, _ = packed_store
    data = bytearray(arena_path.read_bytes())
    data[len(data) // 3] ^= 0xFF  # somewhere inside a section payload
    arena_path.write_bytes(bytes(data))
    assert PolicyArena(arena_path).policy_count  # parse alone does not read payloads
    with pytest.raises(ArenaIntegrityError, match="CRC"):
        PolicyArena(arena_path, verify=True)


def test_store_verify_reports_arena(packed_store):
    store, arena_path, _ = packed_store
    report = store.verify()
    assert report[f"arena:{arena_path.name}"] is True
    data = arena_path.read_bytes()
    arena_path.write_bytes(data[:80])
    report = store.verify()
    assert report[f"arena:{arena_path.name}"] is False
    # JSON artifacts are unaffected by arena corruption.
    assert all(ok for name, ok in report.items() if not name.startswith("arena:"))


def test_server_falls_back_to_json_on_corrupt_arena(packed_store):
    store, arena_path, names = packed_store
    data = arena_path.read_bytes()
    arena_path.write_bytes(data[: len(data) - 40])
    server = PolicyServer(store=store, cache_size=8)
    assert server.arena is None
    assert server.arena_error  # the reason is recorded, serving continues
    response = server.serve_columnar(
        PolicyRequestBatch(
            policy_ids=np.array([names[0]]),
            observations=np.zeros((1, N_FEATURES)),
        )
    )
    assert response.action_indices.shape == (1,)
    assert server.stats.compile_count == 1
    assert server.stats.arena_hits == 0


def test_resolve_arena_semantics(packed_store, tmp_path):
    store, arena_path, _ = packed_store
    arena, error = resolve_arena(False, store)
    assert arena is None and error is None
    arena, error = resolve_arena(None, store)
    assert arena is not None and error is None
    arena.close()
    arena, error = resolve_arena(str(arena_path), store)
    assert arena is not None
    arena.close()
    empty = PolicyStore(tmp_path / "none")
    arena, error = resolve_arena(None, empty)
    assert arena is None and error is None  # auto-detect: absence is not an error
    with pytest.raises(FileNotFoundError):
        resolve_arena(True, empty)  # explicit request: absence is
    with pytest.raises(FileNotFoundError):
        resolve_arena(str(tmp_path / "missing.arena"), store)


# ----------------------------------------------------------------- serving
def test_arena_first_resolution_and_eviction_noop(packed_store):
    store, _, names = packed_store
    server = PolicyServer(store=store, cache_size=1)  # LRU of one: any miss evicts
    rng = np.random.default_rng(5)
    observations = rng.uniform(-6.0, 6.0, size=(len(names) * 4, N_FEATURES))
    assigned = np.array([names[i % len(names)] for i in range(len(observations))])
    server.serve_columnar(
        PolicyRequestBatch(policy_ids=assigned, observations=observations)
    )
    assert server.stats.arena_hits == len(names)
    assert server.stats.compile_count == 0
    assert server.stats.evictions == 0  # arena handles never enter the LRU
    assert server.stats.arena_policies == len(names)
    assert server.stats.arena_bytes_mapped > 0
    server.close()


def test_mixed_registered_and_arena_serving(packed_store):
    store, _, names = packed_store
    server = PolicyServer(store=store, cache_size=4)
    fresh = random_policy(77)
    server.register("pinned/summer/extra", fresh)
    ids = np.array(["pinned/summer/extra", names[0], names[1]])
    observations = np.random.default_rng(6).uniform(-6, 6, size=(3, N_FEATURES))
    response = server.serve_columnar(
        PolicyRequestBatch(policy_ids=ids, observations=observations)
    )
    assert response.action_indices[0] == fresh.predict_action_index(observations[0])
    assert server.stats.arena_hits == 2
    assert set(server.policy_ids()) == {"pinned/summer/extra", *names}
    server.close()


def test_sharded_arena_matches_single_and_survives_kill(packed_store):
    store, _, names = packed_store
    rng = np.random.default_rng(7)
    rows = 64
    observations = rng.uniform(-6.0, 6.0, size=(rows, N_FEATURES))
    assigned = np.array([names[i % len(names)] for i in range(rows)])
    batch = PolicyRequestBatch(policy_ids=assigned, observations=observations)

    single = PolicyServer(store=store, cache_size=8, arena=True)
    expected = single.serve_columnar(batch).action_indices
    single.close()

    with ShardedPolicyServer(store=store, num_shards=2, arena=True) as fleet:
        first = fleet.serve_columnar(batch).action_indices
        assert np.array_equal(first, expected)
        # Kill one worker mid-run: the supervisor respawns it and the fresh
        # worker warms up by reopening the mapping — no recompilation, no
        # lost requests, identical actions.
        fleet.supervisor.state(0).process.kill()
        second = fleet.serve_columnar(batch).action_indices
        assert np.array_equal(second, expected)
        stats = fleet.stats()
        assert stats["compile_count"] == 0
        assert stats["arena_hits"] > 0
        assert stats["fleet"]["lost_requests"] == 0
        assert stats["supervisor"]["restarts"] == 1


def test_sharded_single_shard_uses_arena_in_process(packed_store):
    store, _, names = packed_store
    batch = PolicyRequestBatch(
        policy_ids=np.array([names[0]]),
        observations=np.zeros((1, N_FEATURES)),
    )
    with ShardedPolicyServer(store=store, num_shards=1, arena=True) as fleet:
        fleet.serve_columnar(batch)
        stats = fleet.stats()
        assert stats["arena_hits"] == 1
        assert stats["arena_policies"] == len(names)


# --------------------------------------------------------------------- CLI
def test_cli_pack_verify_and_serve_arena(packed_store, tmp_path, capsys):
    from repro.experiments.cli import main

    store, arena_path, _ = packed_store
    assert main(["policies", "--store", str(store.root), "--pack", "--verify"]) == 0
    out = capsys.readouterr().out
    assert "Packed arena" in out
    assert "CORRUPT" not in out

    stats_path = tmp_path / "stats.json"
    assert main([
        "serve", "--store", str(store.root), "--arena",
        "--requests", "64", "--batch-size", "16", "--columnar",
        "--stats-json", str(stats_path),
    ]) == 0
    stats = json.loads(stats_path.read_text())
    assert stats["arena_policies"] == 6
    assert stats["arena_hits"] > 0
    assert stats["compile_count"] == 0


def test_cli_bench_store_cold_smoke(tmp_path, capsys):
    from repro.experiments.cli import main

    output = tmp_path / "bench.json"
    assert main([
        "bench", "--target", "store-cold",
        "--policies", "48", "--shards", "2", "--output", str(output),
    ]) == 0
    payload = json.loads(output.read_text())
    assert payload["benchmark"] == "store-cold"
    assert payload["policies"] == 48
    assert payload["actions_identical"] is True
    assert payload["arena_compile_count"] == 0
    assert payload["restart"]["compile_count"] == 0
    assert payload["restart"]["lost_requests"] == 0
    assert payload["restart"]["arena_hits"] > 0
