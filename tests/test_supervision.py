"""Chaos suite: the shard fleet must heal from injected and real faults.

Every test here drives the *production* recovery paths — faults are honored
inside the worker serve loop (:mod:`repro.serving.faults`), not
monkeypatched — and asserts the contract the supervision layer promises:
callers see latency, never exceptions; recovered responses are bit-identical
to the single-process server; and no shared memory outlives ``close``,
however the workers died.

Heartbeat monitoring is disabled (``heartbeat_interval=None``) except in the
test that exercises it, so restarts happen exactly where each test expects
them.  Wall time stays bounded even for "hang" faults because restarting a
hung worker SIGTERMs it out of its sleep.
"""

import os
import signal
import time

import numpy as np
import pytest

from repro.core.tree_policy import TreePolicy
from repro.data import PolicyRequestBatch, SharedMemoryColumnarBuffer, ShmTransportError
from repro.dtree.cart import DecisionTreeClassifier
from repro.serving import (
    Fault,
    FaultPlan,
    FaultState,
    PolicyServer,
    ShardedPolicyServer,
    ShardedServingError,
)
from repro.serving.faults import KILL_EXIT_CODE

N_FEATURES = 6
ACTION_PAIRS = [(15 + i, 22 + i) for i in range(8)]


def random_policy(seed: int, rows: int = 160) -> TreePolicy:
    rng = np.random.default_rng(seed)
    features = rng.uniform(-5.0, 5.0, size=(rows, N_FEATURES))
    labels = rng.integers(0, len(ACTION_PAIRS), size=rows)
    tree = DecisionTreeClassifier(max_depth=int(rng.integers(2, 9)))
    tree.fit(features, labels)
    return TreePolicy(tree, action_pairs=ACTION_PAIRS)


def mixed_batch(seed: int, rows: int, policy_ids) -> PolicyRequestBatch:
    rng = np.random.default_rng(seed)
    return PolicyRequestBatch(
        policy_ids=np.array([policy_ids[i % len(policy_ids)] for i in range(rows)]),
        observations=rng.uniform(-6.0, 6.0, size=(rows, N_FEATURES)),
    )


@pytest.fixture(scope="module")
def policies():
    return {f"building-{i}": random_policy(i) for i in range(6)}


@pytest.fixture(scope="module")
def reference(policies):
    """A single-process server registered with the same policies."""
    server = PolicyServer(store=False)
    for policy_id, policy in policies.items():
        server.register(policy_id, policy)
    return server


def healing_fleet(policies, **kwargs):
    """A registered store-less fleet: exactness after restart *proves* the
    registration journal replays (there is no store to re-resolve from)."""
    options = dict(
        store=False, num_shards=2, timeout=5.0, heartbeat_interval=None
    )
    options.update(kwargs)
    fleet = ShardedPolicyServer(**options).start()
    for policy_id, policy in policies.items():
        fleet.register(policy_id, policy)
    return fleet


# ------------------------------------------------------------- fault model
def test_fault_plan_is_seed_deterministic():
    first = FaultPlan.seeded(seed=11, num_shards=4, horizon=9)
    second = FaultPlan.seeded(seed=11, num_shards=4, horizon=9)
    assert first == second
    assert FaultPlan.seeded(seed=12, num_shards=4, horizon=9) != first
    assert all(fault.shard < 4 for fault in first.faults)
    assert all(fault.after_batches < 9 for fault in first.faults)


def test_fault_validation():
    with pytest.raises(ValueError, match="Unknown fault kind"):
        Fault(kind="meteor", shard=0)
    with pytest.raises(ValueError, match="non-negative"):
        Fault(kind="kill", shard=-1)
    with pytest.raises(ValueError, match="kinds"):
        FaultPlan.seeded(seed=0, num_shards=2, horizon=4, kinds=())
    wire = Fault(kind="hang", shard=1, after_batches=2, seconds=0.5).to_wire()
    assert Fault.from_wire(wire) == Fault(
        kind="hang", shard=1, after_batches=2, seconds=0.5
    )


def test_fault_state_fires_at_most_one_per_serve():
    state = FaultState()
    state.arm(Fault(kind="late", shard=0, after_batches=0))
    state.arm(Fault(kind="kill", shard=0, after_batches=0))
    first = state.on_serve()
    assert first is not None and first.kind == "late"
    assert state.pending == 1
    second = state.on_serve()
    assert second is not None and second.kind == "kill"
    assert state.on_serve() is None


# ------------------------------------------------------- generation fencing
def test_generation_fence_rejects_stale_header():
    writer = SharedMemoryColumnarBuffer.create(1 << 20, generation=0)
    try:
        batch = PolicyRequestBatch(
            policy_ids=np.array(["a", "b"]),
            observations=np.zeros((2, N_FEATURES)),
        )
        header = batch.to_shm(writer)
        assert header.generation == 0
        stale_reader = SharedMemoryColumnarBuffer.attach(writer.name, generation=1)
        try:
            with pytest.raises(ShmTransportError, match="generation"):
                PolicyRequestBatch.from_shm(stale_reader, header)
        finally:
            stale_reader.close()
        # The matching generation still reads fine.
        reader = SharedMemoryColumnarBuffer.attach(writer.name, generation=0)
        try:
            roundtrip = PolicyRequestBatch.from_shm(reader, header)
            assert np.array_equal(roundtrip.observations, batch.observations)
            del roundtrip
        finally:
            reader.close()
    finally:
        writer.close()
        writer.unlink()


# ----------------------------------------------------------- injected faults
def test_kill_fault_mid_batch_recovers_action_exact(policies, reference):
    fleet = healing_fleet(policies, num_shards=4)
    try:
        batch = mixed_batch(21, 257, list(policies))
        expected = reference.serve_columnar(batch)
        fleet.inject_fault(Fault(kind="kill", shard=0))
        response = fleet.serve_columnar(batch)
        assert np.array_equal(response.action_indices, expected.action_indices)
        assert np.array_equal(
            response.heating_setpoints, expected.heating_setpoints
        )
        assert fleet.supervisor.restarts_total >= 1
        assert fleet.fleet_stats.retries >= 1
        assert fleet.fleet_stats.lost_requests == 0
    finally:
        fleet.close()


def test_hung_worker_hits_deadline_then_restarts(policies, reference):
    fleet = healing_fleet(policies, timeout=0.5, retries=2)
    try:
        old_pid = fleet.supervisor.state(0).process.pid
        fleet.inject_fault(Fault(kind="hang", shard=0, seconds=60.0))
        batch = mixed_batch(22, 128, list(policies))
        started = time.monotonic()
        response = fleet.serve_columnar(batch)
        elapsed = time.monotonic() - started
        expected = reference.serve_columnar(batch)
        assert np.array_equal(response.action_indices, expected.action_indices)
        assert elapsed < 30.0  # deadline fired, not the 60 s sleep
        state = fleet.supervisor.state(0)
        assert state.process.pid != old_pid
        assert state.generation >= 1
        assert state.restarts >= 1
    finally:
        fleet.close()


def test_stale_header_is_fenced_and_retried(policies, reference):
    fleet = healing_fleet(policies)
    try:
        fleet.inject_fault(Fault(kind="stale_header", shard=1))
        batch = mixed_batch(23, 200, list(policies))
        response = fleet.serve_columnar(batch)
        expected = reference.serve_columnar(batch)
        assert np.array_equal(response.action_indices, expected.action_indices)
        assert fleet.supervisor.restarts_total >= 1
        assert fleet.fleet_stats.lost_requests == 0
    finally:
        fleet.close()


def test_late_reply_is_just_latency(policies, reference):
    fleet = healing_fleet(policies)
    try:
        fleet.inject_fault(Fault(kind="late", shard=0, seconds=0.05))
        batch = mixed_batch(24, 96, list(policies))
        response = fleet.serve_columnar(batch)
        expected = reference.serve_columnar(batch)
        assert np.array_equal(response.action_indices, expected.action_indices)
        assert fleet.supervisor.restarts_total == 0  # no restart for lateness
    finally:
        fleet.close()


def test_seeded_fault_stream_loses_nothing(policies, reference):
    """The chaos proof: a seeded kill/stale plan over a 4-shard batch stream
    yields zero caller-visible errors, zero lost requests and bit-identical
    actions to the single-process server."""
    fleet = healing_fleet(policies, num_shards=4, timeout=2.0)
    try:
        horizon = 5
        plan = FaultPlan.seeded(
            seed=7, num_shards=4, horizon=horizon, kinds=("kill", "stale_header")
        )
        for fault in plan.faults:
            fleet.inject_fault(fault)
        total_rows = 0
        for step in range(horizon):
            batch = mixed_batch(30 + step, 129 + step, list(policies))
            response = fleet.serve_columnar(batch)  # must never raise
            expected = reference.serve_columnar(batch)
            assert np.array_equal(
                response.action_indices, expected.action_indices
            )
            total_rows += len(batch)
        assert fleet.fleet_stats.requests == total_rows
        assert fleet.fleet_stats.lost_requests == 0
    finally:
        fleet.close()


# ----------------------------------------------------------- degraded modes
def test_fallback_serves_when_retries_exhausted(policies, reference):
    fleet = healing_fleet(
        policies, timeout=0.4, retries=0, degraded="fallback"
    )
    try:
        # Hang both shards: every slice must fall back in-process.
        fleet.inject_fault(Fault(kind="hang", shard=0, seconds=60.0))
        fleet.inject_fault(Fault(kind="hang", shard=1, seconds=60.0))
        batch = mixed_batch(25, 150, list(policies))
        response = fleet.serve_columnar(batch)
        expected = reference.serve_columnar(batch)
        assert np.array_equal(response.action_indices, expected.action_indices)
        assert fleet.fleet_stats.fallback_rows > 0
        assert fleet.fleet_stats.degraded_batches == 1
        assert fleet.fleet_stats.lost_requests == 0
    finally:
        fleet.close()


def test_fail_mode_raises_and_counts_lost_requests(policies):
    fleet = healing_fleet(policies, timeout=0.4, retries=0, degraded="fail")
    try:
        fleet.inject_fault(Fault(kind="hang", shard=0, seconds=60.0))
        fleet.inject_fault(Fault(kind="hang", shard=1, seconds=60.0))
        batch = mixed_batch(26, 80, list(policies))
        with pytest.raises(ShardedServingError, match="Retry budget exhausted"):
            fleet.serve_columnar(batch)
        assert fleet.fleet_stats.lost_requests == len(batch)
        # The fleet healed itself on the way out: the next call succeeds.
        response = fleet.serve_columnar(batch)
        assert len(response.action_indices) == len(batch)
    finally:
        fleet.close()


def test_degraded_mode_is_validated():
    with pytest.raises(ValueError, match="degraded"):
        ShardedPolicyServer(store=False, num_shards=2, degraded="panic")
    with pytest.raises(ValueError, match="retries"):
        ShardedPolicyServer(store=False, num_shards=2, retries=-1)


# ----------------------------------------------------- registration replay
def test_registration_replay_after_sigkill(policies, reference):
    fleet = healing_fleet(policies)
    try:
        batch = mixed_batch(27, 120, list(policies))
        fleet.serve_columnar(batch)  # warm both shards
        for state in fleet.supervisor.states():
            os.kill(state.process.pid, signal.SIGKILL)
        deadline = time.monotonic() + 10.0
        while (
            any(s.process.is_alive() for s in fleet.supervisor.states())
            and time.monotonic() < deadline
        ):
            time.sleep(0.05)
        # No store exists: only the journal can restore these policies.
        response = fleet.serve_columnar(batch)
        expected = reference.serve_columnar(batch)
        assert np.array_equal(response.action_indices, expected.action_indices)
        assert fleet.supervisor.restarts_total >= 2
    finally:
        fleet.close()


# -------------------------------------------------------------- heartbeats
def test_heartbeat_monitor_restarts_dead_worker_without_traffic(policies):
    fleet = healing_fleet(policies, heartbeat_interval=0.2)
    try:
        victim = fleet.supervisor.state(0).process
        os.kill(victim.pid, signal.SIGKILL)
        deadline = time.monotonic() + 15.0
        while (
            fleet.supervisor.restarts_total == 0
            and time.monotonic() < deadline
        ):
            time.sleep(0.05)
        assert fleet.supervisor.restarts_total >= 1
        with fleet.supervisor.lock:
            replacement = fleet.supervisor.state(0)
            assert replacement.process.is_alive()
            assert replacement.process.pid != victim.pid
            assert replacement.generation >= 1
    finally:
        fleet.close()


def test_supervisor_state_in_stats(policies):
    fleet = healing_fleet(policies)
    try:
        fleet.serve_columnar(mixed_batch(28, 64, list(policies)))
        stats = fleet.stats()
        supervisor = stats["supervisor"]
        assert supervisor["restarts"] == 0
        assert set(supervisor["shards"]) == {0, 1}
        for shard in supervisor["shards"].values():
            assert shard["alive"] is True
            assert shard["generation"] == 0
            assert shard["last_heartbeat_age_seconds"] >= 0.0
        assert stats["fleet"]["lost_requests"] == 0
        assert stats["fleet"]["batches"] == 1
    finally:
        fleet.close()


# ------------------------------------------------------------ single shard
def test_single_shard_path_is_unaffected(policies):
    fleet = ShardedPolicyServer(store=False, num_shards=1)
    for policy_id, policy in policies.items():
        fleet.register(policy_id, policy)
    assert fleet.supervisor is None
    assert fleet.ping()[0]["in_process"] is True
    batch = mixed_batch(29, 50, list(policies))
    response = fleet.serve_columnar(batch)
    assert len(response.action_indices) == 50
    with pytest.raises(ShardedServingError, match="multi-shard"):
        fleet.inject_fault(Fault(kind="kill", shard=0))
    stats = fleet.stats()
    assert "supervisor" not in stats
    fleet.close()


# ---------------------------------------------------------------- lifecycle
def test_close_after_crash_reclaims_everything(policies):
    fleet = healing_fleet(policies)
    states = fleet.supervisor.states()
    ring_names = [
        ring.name
        for state in states
        for ring in (state.request_ring, state.response_ring)
    ]
    for state in states:
        os.kill(state.process.pid, signal.SIGKILL)
    fleet.close()
    fleet.close()  # idempotent
    for state in states:
        assert state.process.exitcode in (-signal.SIGKILL, KILL_EXIT_CODE)
    for name in ring_names:
        with pytest.raises(FileNotFoundError):
            SharedMemoryColumnarBuffer.attach(name)


def test_kill_fault_exit_code_is_distinctive(policies):
    fleet = healing_fleet(policies)
    try:
        victim = fleet.supervisor.state(0).process
        fleet.inject_fault(Fault(kind="kill", shard=0))
        fleet.serve_columnar(mixed_batch(31, 90, list(policies)))
        victim.join(timeout=10.0)
        assert victim.exitcode == KILL_EXIT_CODE
    finally:
        fleet.close()


def test_failed_start_unlinks_partial_fleet(monkeypatch):
    fleet = ShardedPolicyServer(
        store=False, num_shards=3, heartbeat_interval=None
    )
    created = []
    original_create = SharedMemoryColumnarBuffer.create.__func__

    def tracking_create(cls, *args, **kwargs):
        buffer = original_create(cls, *args, **kwargs)
        created.append(buffer.name)
        return buffer

    monkeypatch.setattr(
        SharedMemoryColumnarBuffer, "create", classmethod(tracking_create)
    )
    real_factory = fleet.supervisor._process_factory
    calls = {"count": 0}

    def flaky_factory(*args, **kwargs):
        calls["count"] += 1
        if calls["count"] == 2:
            raise RuntimeError("injected spawn failure")
        return real_factory(*args, **kwargs)

    fleet.supervisor._process_factory = flaky_factory
    with pytest.raises(ShardedServingError, match="injected spawn failure"):
        fleet.start()
    assert len(created) >= 3  # shard 0's pair plus shard 1's first ring
    for name in created:
        with pytest.raises(FileNotFoundError):
            SharedMemoryColumnarBuffer.attach(name)
    fleet.close()  # clean no-op after the failed start


def test_spawn_start_method_round_trip(policies, reference):
    fleet = ShardedPolicyServer(
        store=False,
        num_shards=2,
        start_method="spawn",
        heartbeat_interval=None,
    ).start()
    try:
        for policy_id, policy in policies.items():
            fleet.register(policy_id, policy)
        batch = mixed_batch(32, 70, list(policies))
        response = fleet.serve_columnar(batch)
        expected = reference.serve_columnar(batch)
        assert np.array_equal(response.action_indices, expected.action_indices)
    finally:
        fleet.close()
