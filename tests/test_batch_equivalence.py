"""Batched execution must be numerically identical to the serial reference.

The whole point of the batch engine is speed *without* changing any
paper-reproduction number: same seeds in, bit-identical trajectories, plans,
labels and experiment results out.  These tests lock that contract in at
every layer — thermal network, HVAC plant, environment, RS planner,
Monte-Carlo distillation and the runner backends.
"""

import numpy as np
import pytest

from repro.agents.random_shooting import RandomShootingOptimizer
from repro.agents.rule_based import RuleBasedAgent
from repro.core.decision_dataset import DecisionDatasetGenerator
from repro.core.sampling import AugmentedHistoricalSampler
from repro.env.dataset import collect_historical_data
from repro.env.hvac_env import make_environment
from repro.env.vector_env import BatchedHVACEnvironment
from repro.experiments.runner import ExperimentResult, ExperimentRunner
from repro.experiments.scenarios import get_scenario
from repro.nn.dynamics import ThermalDynamicsModel
from repro.utils.rng import spawn_rngs


# --------------------------------------------------------------------- plant
def test_thermal_step_batch_matches_scalar_rows():
    from repro.buildings.building import make_five_zone_building
    from repro.buildings.thermal import ThermalState, ZoneGains

    network = make_five_zone_building().network
    rng = np.random.default_rng(0)
    temps = rng.uniform(15.0, 28.0, size=(8, len(network.zones)))
    outdoor = rng.uniform(-10.0, 35.0, size=8)
    wind = rng.uniform(0.0, 12.0, size=8)
    gains = rng.uniform(-2000.0, 4000.0, size=(8, len(network.zones)))

    batched = network.step_batch(temps, outdoor, wind, gains, duration_seconds=900.0)
    for row in range(8):
        scalar = network.step(
            ThermalState(temps[row].copy()),
            outdoor_temperature_c=float(outdoor[row]),
            wind_speed_ms=float(wind[row]),
            gains={
                name: ZoneGains(hvac_thermal_w=float(gains[row, i]))
                for i, name in enumerate(network.zone_names)
            },
            duration_seconds=900.0,
        )
        assert np.array_equal(batched[row], scalar.temperatures)


def test_batched_hvac_plant_matches_scalar_units():
    from repro.buildings.building import make_five_zone_building
    from repro.buildings.hvac import BatchedHVACPlant

    buildings = [make_five_zone_building() for _ in range(4)]
    plant = BatchedHVACPlant(
        [b.hvac_units for b in buildings], buildings[0].network.zone_names
    )
    rng = np.random.default_rng(1)
    temps = rng.uniform(14.0, 30.0, size=(4, 5))
    heating = np.array([18.0, 20.0, 21.0, 15.0])
    cooling = np.array([24.0, 23.5, 26.0, 30.0])
    occupied = np.array([True, False, True, False])

    result = plant.evaluate(temps, heating, cooling, occupied)
    for b, building in enumerate(buildings):
        for z, name in enumerate(building.network.zone_names):
            scalar = building.hvac_units[name].evaluate(
                zone_temperature_c=float(temps[b, z]),
                heating_setpoint_c=float(heating[b]),
                cooling_setpoint_c=float(cooling[b]),
                occupied=bool(occupied[b]),
            )
            assert result.thermal_power_w[b, z] == scalar.thermal_power_w
            assert result.electric_power_w[b, z] == scalar.electric_power_w
            assert result.heating_mask[b, z] == (scalar.mode == "heating")
            assert result.cooling_mask[b, z] == (scalar.mode == "cooling")


# --------------------------------------------------------------- environment
def test_batched_environment_matches_serial_episodes():
    spec = get_scenario("tucson/summer", days=1)
    seeds = [3, 14, 15]
    serial_envs = [spec.build_environment(seed=s) for s in seeds]
    batched = BatchedHVACEnvironment([spec.build_environment(seed=s) for s in seeds])

    obs_batch, _ = batched.reset()
    obs_serial = np.stack([env.reset()[0] for env in serial_envs])
    assert np.array_equal(obs_batch, obs_serial)

    rng = np.random.default_rng(2)
    for _ in range(serial_envs[0].num_steps):
        actions = rng.integers(0, serial_envs[0].action_space.n, size=len(seeds))
        batch_result = batched.step(actions)
        for i, env in enumerate(serial_envs):
            serial_result = env.step(int(actions[i]))
            assert np.array_equal(serial_result.observation, batch_result.observations[i])
            assert serial_result.reward == batch_result.rewards[i]
            for key, value in serial_result.info.items():
                batch_value = batch_result.info[key]
                if not np.isscalar(batch_value):
                    batch_value = batch_value[i]
                assert float(value) == float(batch_value), key
        assert batch_result.truncated == serial_result.truncated


def test_batched_environment_rejects_mismatched_episodes():
    short = get_scenario("pittsburgh/winter", days=1).build_environment(seed=0)
    long = get_scenario("pittsburgh/winter", days=2).build_environment(seed=0)
    with pytest.raises(ValueError, match="same length"):
        BatchedHVACEnvironment([short, long])


def test_batched_environment_rejects_mismatched_gain_parameters():
    import dataclasses

    spec = get_scenario("pittsburgh/winter", days=1)
    reference = spec.build_environment(seed=0)
    modified = spec.build_environment(seed=1)
    zones = modified.building.zones
    zones[0] = dataclasses.replace(zones[0], equipment_gain_w=zones[0].equipment_gain_w + 1.0)
    with pytest.raises(ValueError, match="gain parameters"):
        BatchedHVACEnvironment([reference, modified])


# ------------------------------------------------------------------- planner
@pytest.fixture(scope="module")
def distillation_setup():
    environment = make_environment(days=2, seed=0)
    data = collect_historical_data(
        environment, RuleBasedAgent.from_config(environment), seed=1
    )
    model = ThermalDynamicsModel(hidden_sizes=(16,), seed=2)
    model.fit(data, epochs=3, seed=3)
    optimizer = RandomShootingOptimizer(
        dynamics_model=model,
        action_space=environment.action_space,
        reward_config=environment.config.reward,
        action_config=environment.config.actions,
        num_samples=50,
        horizon=5,
        seed=4,
    )
    sampler = AugmentedHistoricalSampler.from_dataset(data)
    generator = DecisionDatasetGenerator(
        optimizer=optimizer,
        sampler=sampler,
        action_pairs=environment.action_space.pairs,
        monte_carlo_runs=3,
        planning_horizon=5,
    )
    return optimizer, sampler, generator


def test_plan_batch_matches_serial_plans(distillation_setup):
    optimizer, sampler, _generator = distillation_setup
    inputs = sampler.sample(5, np.random.default_rng(6))
    states = inputs[:, 0]
    disturbances = inputs[:, 1:]
    occupied = disturbances[:, 4] > 0.5

    serial_rngs = spawn_rngs(99, len(inputs))
    batch_rngs = spawn_rngs(99, len(inputs))
    horizon = 5
    serial = [
        optimizer.plan(
            states[i],
            np.repeat(disturbances[i].reshape(1, -1), horizon, axis=0),
            [bool(occupied[i])] * horizon,
            rng=serial_rngs[i],
        )
        for i in range(len(inputs))
    ]
    batch = optimizer.plan_batch(
        states,
        np.broadcast_to(disturbances[:, None, :], (len(inputs), horizon, 5)),
        np.broadcast_to(occupied[:, None], (len(inputs), horizon)),
        rngs=batch_rngs,
    )
    for i, result in enumerate(serial):
        assert result.best_action_index == batch.best_action_indices[i]
        assert result.best_return == batch.best_returns[i]
        assert np.array_equal(result.best_sequence, batch.best_sequences[i])
        assert result.best_setpoints == batch.result(i).best_setpoints


def test_plan_populates_best_setpoints(distillation_setup):
    optimizer, sampler, _generator = distillation_setup
    policy_input = sampler.sample(1, np.random.default_rng(8))[0]
    forecast = np.repeat(policy_input[1:].reshape(1, -1), 5, axis=0)
    result = optimizer.plan(policy_input[0], forecast, [True] * 5, rng=7)
    assert result.best_setpoints is not None
    assert result.best_setpoints == tuple(
        optimizer.action_space.to_pair(result.best_action_index)
    )


# -------------------------------------------------------------- distillation
def test_batched_generate_identical_labels(distillation_setup):
    _optimizer, _sampler, generator = distillation_setup
    serial = generator.generate(12, seed=42, method="serial")
    batched = generator.generate(12, seed=42, method="batched")
    chunked = generator.generate(12, seed=42, method="batched", chunk_inputs=5)
    assert np.array_equal(serial.inputs, batched.inputs)
    assert np.array_equal(serial.action_labels, batched.action_labels)
    assert np.array_equal(serial.action_labels, chunked.action_labels)


def test_generate_rejects_unknown_method(distillation_setup):
    _optimizer, _sampler, generator = distillation_setup
    with pytest.raises(ValueError, match="Unknown method"):
        generator.generate(4, seed=0, method="warp")


# ------------------------------------------------------------------- runner
def _strip_timing(result: ExperimentResult) -> dict:
    data = result.to_dict()
    data.pop("mean_steps_per_second")
    for episode in data["episodes"]:
        episode.pop("wall_seconds")
        episode.pop("steps_per_second")
    return data


@pytest.mark.parametrize("backend,kwargs", [
    ("batched", {"batch_size": 2}),
    ("batched", {}),
    ("process", {"workers": 2}),
])
def test_runner_backends_identical_results(backend, kwargs):
    serial = ExperimentRunner(
        "pittsburgh/winter", episodes=3, base_seed=11, max_steps=48
    ).run("rule_based")
    other = ExperimentRunner(
        "pittsburgh/winter",
        episodes=3,
        base_seed=11,
        max_steps=48,
        backend=backend,
        **kwargs,
    ).run("rule_based")
    assert _strip_timing(other) == _strip_timing(serial)


def test_runner_backends_identical_for_stochastic_agent():
    serial = ExperimentRunner(
        "tucson/summer", episodes=4, base_seed=5, max_steps=24
    ).run("random")
    batched = ExperimentRunner(
        "tucson/summer", episodes=4, base_seed=5, max_steps=24, backend="batched"
    ).run("random")
    assert _strip_timing(batched) == _strip_timing(serial)


def test_batched_backend_requires_agent_name():
    from repro.agents import ConstantAgent

    runner = ExperimentRunner(
        "pittsburgh/winter", episodes=1, max_steps=8, backend="batched"
    )
    with pytest.raises(ValueError, match="registry agent name"):
        runner.run(ConstantAgent(20, 26))


def test_runner_rejects_unknown_backend():
    with pytest.raises(ValueError, match="Unknown backend"):
        ExperimentRunner("pittsburgh/winter", backend="quantum")


# ----------------------------------------------------- agent-side batching
def test_rule_based_action_plan_matches_select_action():
    env = get_scenario("pittsburgh/winter", days=2).build_environment(seed=3)
    agent = RuleBasedAgent.from_config(env)
    plan = agent.action_plan(env)
    assert len(plan) == env.num_steps
    observation, _ = env.reset()
    for step in range(env.num_steps):
        assert plan[step] == agent.select_action(observation, env, step), step


def test_rule_based_plan_respects_preheat_and_margin():
    env = get_scenario("tucson/summer", days=1).build_environment(seed=4)
    agent = RuleBasedAgent.from_config(env, preheat_hours=2.5, setback_margin=0.5)
    plan = agent.action_plan(env)
    reference = [agent.select_action(None, env, step) for step in range(env.num_steps)]
    assert plan.tolist() == reference


def test_select_actions_batch_default_matches_per_episode():
    from repro.agents.base import BaseAgent
    from repro.agents import make_agent

    spec = get_scenario("pittsburgh/winter", days=1)
    seeds = [1, 2, 3]
    environments = [spec.build_environment(seed=s) for s in seeds]
    agents = [make_agent("random", environment=e, seed=s) for e, s in zip(environments, seeds)]
    observations = np.stack([env.reset()[0] for env in environments])
    # The default implementation consumes each agent's RNG exactly like the
    # per-episode loop would; rebuild to compare the streams.
    batch = BaseAgent.select_actions_batch(agents, observations, environments, 0)
    rebuilt = [make_agent("random", environment=e, seed=s) for e, s in zip(environments, seeds)]
    reference = [a.select_action(observations[i], environments[i], 0) for i, a in enumerate(rebuilt)]
    assert batch.tolist() == reference


def test_dt_batched_backend_matches_serial():
    pipeline = {
        "num_decision_data": 48,
        "training_epochs": 5,
        "optimizer_samples": 32,
        "num_probabilistic_samples": 64,
    }
    kwargs = dict(episodes=2, base_seed=5, max_steps=48)
    serial = ExperimentRunner("pittsburgh/winter", **kwargs).run(
        "dt", agent_config={"pipeline": pipeline}
    )
    batched = ExperimentRunner("pittsburgh/winter", backend="batched", **kwargs).run(
        "dt", agent_config={"pipeline": pipeline}
    )
    assert _strip_timing(batched) == _strip_timing(serial)
