#!/usr/bin/env python
"""Docstring-coverage gate for the public API (CI: the docs job).

Imports the audited modules and walks every public symbol — module-level
functions, classes, and the methods/properties classes define themselves —
requiring a non-empty docstring on each.  "Public" means not underscore-
prefixed and actually defined in the audited package (re-exports of another
package's symbols are that package's responsibility).

Usage::

    PYTHONPATH=src python scripts/check_docstrings.py            # default scope
    PYTHONPATH=src python scripts/check_docstrings.py repro.data repro.serving

Exits non-zero listing every undocumented symbol.
"""

from __future__ import annotations

import importlib
import inspect
import pkgutil
import sys

#: The packages whose public API must be fully documented (dtypes, shapes and
#: shared-memory ownership live in these docstrings — see docs/serving.md;
#: lint rule semantics live in repro.analysis — see docs/static-analysis.md).
DEFAULT_SCOPE = ["repro.data", "repro.serving", "repro.analysis", "repro.fleet"]


def iter_modules(package_name: str):
    """Yield the package module and every submodule under it."""
    package = importlib.import_module(package_name)
    yield package
    if hasattr(package, "__path__"):
        for info in pkgutil.walk_packages(package.__path__, prefix=package_name + "."):
            yield importlib.import_module(info.name)


def has_doc(obj) -> bool:
    doc = inspect.getdoc(obj)
    return bool(doc and doc.strip())


def audit_module(module) -> list:
    """Return ``module:symbol`` labels for every undocumented public symbol."""
    missing = []
    if not has_doc(module):
        missing.append(f"{module.__name__} (module docstring)")
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if inspect.isclass(obj) or inspect.isfunction(obj):
            # Only audit symbols defined somewhere in the audited package —
            # not numpy/stdlib re-imports.
            if not (obj.__module__ or "").startswith(module.__name__.split(".")[0]):
                continue
            if obj.__module__ != module.__name__:
                continue  # audited where it is defined, not where re-exported
            label = f"{module.__name__}.{name}"
            if not has_doc(obj):
                missing.append(label)
            if inspect.isclass(obj):
                missing.extend(audit_class(obj, label))
    return missing


def audit_class(cls, label: str) -> list:
    """Audit the methods/properties ``cls`` itself defines (not inherited)."""
    missing = []
    for name, member in vars(cls).items():
        if name.startswith("_"):
            continue
        target = None
        if isinstance(member, property):
            target = member.fget
        elif isinstance(member, (staticmethod, classmethod)):
            target = member.__func__
        elif inspect.isfunction(member):
            target = member
        if target is not None and not has_doc(target):
            missing.append(f"{label}.{name}")
    return missing


def main(argv) -> int:
    scope = argv or DEFAULT_SCOPE
    missing = []
    for package_name in scope:
        for module in iter_modules(package_name):
            missing.extend(audit_module(module))
    if missing:
        print(f"{len(missing)} public symbol(s) missing docstrings:")
        for label in sorted(missing):
            print(f"  {label}")
        return 1
    print(f"Docstring coverage OK across {', '.join(scope)}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
