#!/usr/bin/env python
"""Intra-repo link checker for the markdown docs (CI: the docs job).

Scans the repository's markdown (README.md, docs/**.md, and the other
top-level pages) for ``[text](target)`` links and verifies every *relative*
target resolves to a real file or directory.  External links (with a URL
scheme) and pure in-page anchors are left alone; a ``path#anchor`` target is
checked for the path part only.

Usage::

    python scripts/check_docs_links.py          # from the repository root
    python scripts/check_docs_links.py docs README.md

Exits non-zero listing every broken link.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

#: Markdown link targets: [text](target) — excluding images' leading ``!`` is
#: unnecessary (image paths must resolve too).
LINK_PATTERN = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

#: Targets that are not repo-relative paths.
SCHEMES = ("http://", "https://", "mailto:", "ftp://")


def markdown_files(roots) -> list:
    """Every ``*.md`` under the given files/directories (sorted, unique)."""
    files = set()
    for root in roots:
        path = Path(root)
        if path.is_dir():
            files.update(path.rglob("*.md"))
        elif path.suffix == ".md":
            files.add(path)
    return sorted(files)


def broken_links(markdown_path: Path) -> list:
    """``(target, reason)`` for every unresolvable relative link in one file."""
    problems = []
    text = markdown_path.read_text(encoding="utf-8")
    for match in LINK_PATTERN.finditer(text):
        target = match.group(1)
        if target.startswith(SCHEMES) or target.startswith("#"):
            continue
        path_part = target.split("#", 1)[0]
        if not path_part:
            continue
        resolved = (markdown_path.parent / path_part).resolve()
        if not resolved.exists():
            problems.append((target, f"{resolved} does not exist"))
    return problems


def main(argv) -> int:
    roots = argv or ["README.md", "docs", "ROADMAP.md", "CHANGES.md", "PAPER.md"]
    failures = []
    checked = 0
    for markdown_path in markdown_files(roots):
        checked += 1
        for target, reason in broken_links(markdown_path):
            failures.append(f"{markdown_path}: [{target}] -> {reason}")
    if failures:
        print(f"{len(failures)} broken link(s):")
        for failure in failures:
            print(f"  {failure}")
        return 1
    print(f"Links OK across {checked} markdown file(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
