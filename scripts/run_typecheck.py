#!/usr/bin/env python
"""Run the strict mypy gate over the migrated packages.

The strict surface (``repro.data``, ``repro.serving``, ``repro.store``) and
all flag policy live in ``pyproject.toml``'s ``[tool.mypy]`` tables — this
wrapper only locates mypy and reports.  Where mypy is not installed (the
pinned local toolchain does not ship it) the gate is *skipped with a notice*
rather than failed, so `python scripts/run_typecheck.py` is safe in every
environment while CI — which installs the ``typecheck`` extra — still
enforces it.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]


def main() -> int:
    """Invoke ``mypy`` from pyproject config; 0 on pass or tool-missing."""
    try:
        import mypy  # noqa: F401
    except ModuleNotFoundError:
        print(
            "run_typecheck: mypy is not installed; skipping the strict typing "
            "gate (install the 'typecheck' extra to run it)"
        )
        return 0
    cmd = [sys.executable, "-m", "mypy", "--config-file", "pyproject.toml"]
    print("run_typecheck:", " ".join(cmd))
    return subprocess.call(cmd, cwd=REPO_ROOT)


if __name__ == "__main__":
    raise SystemExit(main())
